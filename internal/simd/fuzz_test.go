package simd

import (
	"encoding/binary"
	"testing"
)

// Differential fuzzing for the find/reduce kernel families: every input is
// evaluated three ways — a naive per-element oracle written independently
// of the kernels, the dispatched entry point (asm when active), and, on
// amd64 CPUs with AVX2, the assembly wrappers called directly via the
// fuzzFindAlt/fuzzReduceAlt hooks (so the asm is exercised even under
// GODEBUG=cpu.avx2=off). Any divergence is a bug in normalization, the
// portable SWAR loops, or the assembly.

// fuzzFindAlt and fuzzReduceAlt mirror Find/Reduce but force the AVX2
// kernels; installed by an init in fuzz_hooks_amd64_test.go when the CPU
// supports AVX2, nil elsewhere.
var (
	fuzzFindAlt   func(data []byte, width, n int, op Op, c1, c2 uint64, base uint32) []uint32
	fuzzReduceAlt func(data []byte, width int, op Op, c1, c2 uint64, m []uint32) []uint32
)

// evalU is the oracle: does the width-truncated unsigned value v satisfy
// op against the untruncated constants?
func fuzzEvalU(v uint64, op Op, c1, c2 uint64) bool {
	switch op {
	case OpEq:
		return v == c1
	case OpNe:
		return v != c1
	case OpLt:
		return v < c1
	case OpLe:
		return v <= c1
	case OpGt:
		return v > c1
	case OpGe:
		return v >= c1
	default:
		return v >= c1 && v <= c2
	}
}

func fuzzEvalI(v int64, op Op, c1, c2 int64) bool {
	switch op {
	case OpEq:
		return v == c1
	case OpNe:
		return v != c1
	case OpLt:
		return v < c1
	case OpLe:
		return v <= c1
	case OpGt:
		return v > c1
	case OpGe:
		return v >= c1
	default:
		return v >= c1 && v <= c2
	}
}

func fuzzLoadU(data []byte, width, i int) uint64 {
	switch width {
	case 1:
		return uint64(data[i])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[2*i:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[4*i:]))
	default:
		return binary.LittleEndian.Uint64(data[8*i:])
	}
}

func eqPos(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// selVector derives a sorted, unique match vector over [0, n) from the
// fuzzer-controlled selector bytes.
func selVector(sel []byte, n int) []uint32 {
	if len(sel) == 0 {
		sel = []byte{0xa5}
	}
	m := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		if sel[i%len(sel)]>>(uint(i)%8)&1 == 1 {
			m = append(m, uint32(i))
		}
	}
	return m
}

func FuzzFindKernels(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 255, 254, 128, 127, 63, 64, 65, 9}, byte(6), uint64(2), uint64(200), uint32(0))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, byte(0), uint64(1), uint64(0), uint32(1<<30))
	f.Add(make([]byte, 300), byte(1), uint64(0), uint64(0), uint32(7))
	f.Fuzz(func(t *testing.T, data []byte, opB byte, c1, c2 uint64, base uint32) {
		op := Op(opB % 7)
		for _, width := range []int{1, 2, 4, 8} {
			n := len(data) / width
			var want []uint32
			for i := 0; i < n; i++ {
				if fuzzEvalU(fuzzLoadU(data, width, i), op, c1, c2) {
					want = append(want, base+uint32(i))
				}
			}
			got := Find(data, width, n, op, c1, c2, base, nil)
			if !eqPos(got, want) {
				t.Fatalf("Find width=%d op=%d c1=%d c2=%d: got %d matches want %d",
					width, op, c1, c2, len(got), len(want))
			}
			if fuzzFindAlt != nil {
				alt := fuzzFindAlt(data, width, n, op, c1, c2, base)
				if !eqPos(alt, want) {
					t.Fatalf("AVX2 find width=%d op=%d diverges: got %d matches want %d",
						width, op, len(alt), len(want))
				}
			}
		}

		// Signed 64-bit over the same bytes.
		n := len(data) / 8
		col := make([]int64, n)
		for i := range col {
			col[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
		var wantI []uint32
		for i, v := range col {
			if fuzzEvalI(v, op, int64(c1), int64(c2)) {
				wantI = append(wantI, base+uint32(i))
			}
		}
		if got := FindInt64(col, op, int64(c1), int64(c2), base, nil); !eqPos(got, wantI) {
			t.Fatalf("FindInt64 op=%d: got %d matches want %d", op, len(got), len(wantI))
		}

		// Bitmap positions, both polarities, with a ragged tail.
		bm := make([]uint64, (len(data)+7)/8)
		for i, b := range data {
			bm[i/8] |= uint64(b) << (8 * (uint(i) % 8))
		}
		nb := len(data) * 8
		if nb > 13 {
			nb -= 13
		}
		for _, wantSet := range []bool{true, false} {
			var wantB []uint32
			for i := 0; i < nb; i++ {
				if BitmapGet(bm, uint32(i)) == wantSet {
					wantB = append(wantB, base+uint32(i))
				}
			}
			if got := FindBitmap(bm, nb, wantSet, base, nil); !eqPos(got, wantB) {
				t.Fatalf("FindBitmap wantSet=%v: got %d matches want %d", wantSet, len(got), len(wantB))
			}
		}
	})
}

func FuzzReduceKernels(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 1, 2, 3, 200, 100}, []byte{0xff, 0x0f}, byte(6), uint64(3), uint64(9))
	f.Add(make([]byte, 256), []byte{0xaa}, byte(2), uint64(1), uint64(0))
	f.Fuzz(func(t *testing.T, data, sel []byte, opB byte, c1, c2 uint64) {
		op := Op(opB % 7)
		for _, width := range []int{1, 2, 4, 8} {
			n := len(data) / width
			m := selVector(sel, n)
			var want []uint32
			for _, p := range m {
				if fuzzEvalU(fuzzLoadU(data, width, int(p)), op, c1, c2) {
					want = append(want, p)
				}
			}
			got := Reduce(data, width, op, c1, c2, append([]uint32(nil), m...))
			if !eqPos(got, want) {
				t.Fatalf("Reduce width=%d op=%d c1=%d c2=%d: got %d matches want %d",
					width, op, c1, c2, len(got), len(want))
			}
			if fuzzReduceAlt != nil {
				alt := fuzzReduceAlt(data, width, op, c1, c2, append([]uint32(nil), m...))
				if !eqPos(alt, want) {
					t.Fatalf("AVX2 reduce width=%d op=%d diverges: got %d matches want %d",
						width, op, len(alt), len(want))
				}
			}
		}

		// Signed 64-bit reduce.
		n := len(data) / 8
		col := make([]int64, n)
		for i := range col {
			col[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
		m := selVector(sel, n)
		var wantI []uint32
		for _, p := range m {
			if fuzzEvalI(col[p], op, int64(c1), int64(c2)) {
				wantI = append(wantI, p)
			}
		}
		if got := ReduceInt64(col, op, int64(c1), int64(c2), append([]uint32(nil), m...)); !eqPos(got, wantI) {
			t.Fatalf("ReduceInt64 op=%d: got %d matches want %d", op, len(got), len(wantI))
		}

		// Bitmap reduce, both polarities.
		bm := make([]uint64, (len(data)+7)/8)
		for i, b := range data {
			bm[i/8] |= uint64(b) << (8 * (uint(i) % 8))
		}
		mb := selVector(sel, len(data)*8)
		for _, wantSet := range []bool{true, false} {
			var wantB []uint32
			for _, p := range mb {
				if BitmapGet(bm, p) == wantSet {
					wantB = append(wantB, p)
				}
			}
			if got := ReduceBitmap(bm, wantSet, append([]uint32(nil), mb...)); !eqPos(got, wantB) {
				t.Fatalf("ReduceBitmap wantSet=%v: got %d matches want %d", wantSet, len(got), len(wantB))
			}
		}
	})
}
