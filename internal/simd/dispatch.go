package simd

import "sort"

// Runtime kernel dispatch. Every hot kernel is reached through a package
// function variable initialized to the portable (pure-Go SWAR/scalar)
// implementation; on amd64 hosts with AVX2 the arch init swaps in the
// assembler version (see dispatch_amd64.go). The portable and assembler
// implementations are bit-identical by contract — including NULL-mask
// handling and accumulator seeding — and the differential fuzz/property
// tests in this package enforce it.
//
// Dispatch is decided once at process start:
//
//   - the CPU must report AVX2 (CPUID leaf 7) with OS-enabled YMM state
//     (XGETBV), and
//   - GODEBUG must not disable it (`cpu.avx2=off` or `cpu.all=off`,
//     mirroring the runtime's own feature gating), which is how CI forces
//     the portable leg on AVX2 hardware.
var (
	findBetweenW1Fn = findBetweenW1
	findNeW1Fn      = findNeW1
	findBetweenW2Fn = findBetweenW2
	findNeW2Fn      = findNeW2
	findBetweenW4Fn = findBetweenW4
	findNeW4Fn      = findNeW4
	findBetweenW8Fn = findBetweenW8
	findNeW8Fn      = findNeW8

	findBetweenI64Fn = findBetweenI64
	findNeI64Fn      = findNeI64
	findBitmapFn     = findBitmapPortable

	reduceBetweenW1Fn = reduceBetweenW1
	reduceNeW1Fn      = reduceNeW1
	reduceBetweenW2Fn = reduceBetweenW2
	reduceNeW2Fn      = reduceNeW2
	reduceBetweenW4Fn = reduceBetweenW4
	reduceNeW4Fn      = reduceNeW4
	reduceBetweenW8Fn = reduceBetweenW8
	reduceNeW8Fn      = reduceNeW8

	reduceBetweenI64Fn = reduceBetweenI64
	reduceNeI64Fn      = reduceNeI64
	reduceBitmapFn     = reduceBitmapPortable

	sumF64DenseFn    = sumFloat64Dense
	sumF64MaskedFn   = sumFloat64Masked
	minMaxI64DenseFn = minMaxInt64Dense
	minMaxI64MaskFn  = minMaxInt64Masked
	minMaxF64DenseFn = minMaxFloat64Dense
	minMaxF64MaskFn  = minMaxFloat64Masked

	hashI64Fn        = hashInt64Portable
	hashF64Fn        = hashFloat64Portable
	hashCombineI64Fn = hashCombineInt64Portable
	hashCombineF64Fn = hashCombineFloat64Portable
)

// cpuHasAVX2 reports the hardware capability; avx2Active reports the
// dispatch decision (hardware present AND not disabled via GODEBUG).
// Differential tests key off cpuHasAVX2 so the assembler kernels are
// still exercised on the GODEBUG=cpu.avx2=off CI leg.
var (
	cpuHasAVX2 bool
	avx2Active bool
)

// avx2Kernels names the kernel families the arch init has pointed at
// assembler implementations; everything else is portable.
var avx2Kernels = map[string]bool{}

// kernelFamilies is the stable list reported by DispatchInfo.
var kernelFamilies = []string{
	"find.w1", "find.w2", "find.w4", "find.w8",
	"find.int64", "find.bitmap",
	"reduce.w1", "reduce.w2", "reduce.w4", "reduce.w8",
	"reduce.int64", "reduce.bitmap",
	"agg.sum_f64", "agg.minmax_i64", "agg.minmax_f64",
	"hash.mix64",
}

// AVX2Enabled reports whether the assembler kernels are dispatched in
// this process.
func AVX2Enabled() bool { return avx2Active }

// CPUFeatureLevel names the instruction-set level the dispatcher selected:
// "avx2" when the assembler kernels are active, "baseline" otherwise.
func CPUFeatureLevel() string {
	if avx2Active {
		return "avx2"
	}
	return "baseline"
}

// KernelDispatch records the implementation chosen for one kernel family.
type KernelDispatch struct {
	Kernel string `json:"kernel"`
	Impl   string `json:"impl"` // "avx2" or "portable"
}

// DispatchInfo returns the per-kernel dispatch decisions, sorted by kernel
// name. Benchmark and metrics JSON embed it so numbers from different
// hosts (or different GODEBUG legs) are interpretable.
func DispatchInfo() []KernelDispatch {
	out := make([]KernelDispatch, 0, len(kernelFamilies))
	for _, k := range kernelFamilies {
		impl := "portable"
		if avx2Kernels[k] {
			impl = "avx2"
		}
		out = append(out, KernelDispatch{Kernel: k, Impl: impl})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}
