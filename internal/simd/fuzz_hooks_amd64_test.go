//go:build amd64

package simd

// The fuzz hooks force the AVX2 kernels regardless of the dispatch state,
// mirroring Find's and Reduce's normalization exactly, so the differential
// fuzz targets cover the assembly even on the GODEBUG=cpu.avx2=off CI leg.
// Gated on hardware capability, not on avx2Active.

func init() {
	if !cpuHasAVX2 {
		return
	}
	fuzzFindAlt = func(data []byte, width, n int, op Op, c1, c2 uint64, base uint32) []uint32 {
		lo, hi, ne, empty, all := normalizeU(op, c1, c2, maxFor(width))
		if empty {
			return nil
		}
		out := EnsureCap(nil, n+8)
		if all {
			return appendAll(out, n, base)
		}
		if ne {
			switch width {
			case 1:
				return findNeW1AVX2(data, n, uint8(lo), base, out)
			case 2:
				return findNeW2AVX2(data, n, uint16(lo), base, out)
			case 4:
				return findNeW4AVX2(data, n, uint32(lo), base, out)
			default:
				return findNeW8AVX2(data, n, lo, base, out)
			}
		}
		switch width {
		case 1:
			return findBetweenW1AVX2(data, n, uint8(lo), uint8(hi), base, out)
		case 2:
			return findBetweenW2AVX2(data, n, uint16(lo), uint16(hi), base, out)
		case 4:
			return findBetweenW4AVX2(data, n, uint32(lo), uint32(hi), base, out)
		default:
			return findBetweenW8AVX2(data, n, lo, hi, base, out)
		}
	}
	fuzzReduceAlt = func(data []byte, width int, op Op, c1, c2 uint64, m []uint32) []uint32 {
		lo, hi, ne, empty, all := normalizeU(op, c1, c2, maxFor(width))
		if empty {
			return m[:0]
		}
		if all {
			return m
		}
		if ne {
			switch width {
			case 1:
				return reduceNeW1AVX2(data, uint8(lo), m)
			case 2:
				return reduceNeW2AVX2(data, uint16(lo), m)
			case 4:
				return reduceNeW4AVX2(data, uint32(lo), m)
			default:
				return reduceNeW8AVX2(data, lo, m)
			}
		}
		switch width {
		case 1:
			return reduceBetweenW1AVX2(data, uint8(lo), uint8(hi), m)
		case 2:
			return reduceBetweenW2AVX2(data, uint16(lo), uint16(hi), m)
		case 4:
			return reduceBetweenW4AVX2(data, uint32(lo), uint32(hi), m)
		default:
			return reduceBetweenW8AVX2(data, lo, hi, m)
		}
	}
}
