package simd

import "encoding/binary"

// This file holds the scalar baselines the paper measures against:
//
//   - FindScalar: branch-free scalar code, the "x86" series of Figures 8/9.
//   - FindBranchy: naive branching code, whose selectivity sensitivity
//     motivates the positions table (Figure 12a discussion).
//   - ReduceScalar: branch-free scalar reduce, the Figure 9 baseline.
//   - PositionsFromBitmap / PositionsFromBitmapBranchy: the two bitmask →
//     position-vector conversions compared in §5.4 for bit-packed scans.
//
// They share the predicate normalization with the SWAR kernels so that every
// implementation is measured on identical semantics.

func evalU(v, lo, hi uint64, ne bool) uint32 {
	if ne {
		return b2u(v != lo)
	}
	return b2u(v >= lo && v <= hi)
}

// FindScalar appends matching positions using one branch-free scalar
// comparison per element (conditional increment of the write cursor).
func FindScalar(data []byte, width, n int, op Op, c1, c2 uint64, base uint32, out []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeU(op, c1, c2, maxFor(width))
	if empty {
		return out
	}
	out = EnsureCap(out, n)
	if all {
		return appendAll(out, n, base)
	}
	k := len(out)
	out = out[:cap(out):cap(out)]
	switch width {
	case 1:
		for i := 0; i < n; i++ {
			out[k] = base + uint32(i)
			k += int(evalU(uint64(data[i]), lo, hi, ne))
		}
	case 2:
		for i := 0; i < n; i++ {
			out[k] = base + uint32(i)
			k += int(evalU(uint64(binary.LittleEndian.Uint16(data[i*2:])), lo, hi, ne))
		}
	case 4:
		for i := 0; i < n; i++ {
			out[k] = base + uint32(i)
			k += int(evalU(uint64(binary.LittleEndian.Uint32(data[i*4:])), lo, hi, ne))
		}
	default:
		for i := 0; i < n; i++ {
			out[k] = base + uint32(i)
			k += int(evalU(binary.LittleEndian.Uint64(data[i*8:]), lo, hi, ne))
		}
	}
	return out[:k]
}

// FindBranchy appends matching positions using a naive branch per element.
// Its cost varies with selectivity through branch prediction, unlike the
// table-driven kernels.
func FindBranchy(data []byte, width, n int, op Op, c1, c2 uint64, base uint32, out []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeU(op, c1, c2, maxFor(width))
	if empty {
		return out
	}
	out = EnsureCap(out, n)
	if all {
		return appendAll(out, n, base)
	}
	for i := 0; i < n; i++ {
		v := ReadUint(data, i, width)
		if evalU(v, lo, hi, ne) == 1 {
			k := len(out)
			out = out[: k+1 : cap(out)]
			out[k] = base + uint32(i)
		}
	}
	return out
}

// ReduceScalar shrinks a match vector with one branch-free scalar comparison
// per surviving position (the Figure 9 "x86" baseline).
func ReduceScalar(data []byte, width int, op Op, c1, c2 uint64, m []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeU(op, c1, c2, maxFor(width))
	if empty {
		return m[:0]
	}
	if all {
		return m
	}
	w := 0
	switch width {
	case 1:
		for _, p := range m {
			m[w] = p
			w += int(evalU(uint64(data[p]), lo, hi, ne))
		}
	case 2:
		for _, p := range m {
			m[w] = p
			w += int(evalU(uint64(binary.LittleEndian.Uint16(data[p*2:])), lo, hi, ne))
		}
	case 4:
		for _, p := range m {
			m[w] = p
			w += int(evalU(uint64(binary.LittleEndian.Uint32(data[p*4:])), lo, hi, ne))
		}
	default:
		for _, p := range m {
			m[w] = p
			w += int(evalU(binary.LittleEndian.Uint64(data[p*8:]), lo, hi, ne))
		}
	}
	return m[:w]
}

// FindScalarInt64 is the branch-free tuple-at-a-time baseline on signed
// columns, used by the JIT-style scan measurements.
func FindScalarInt64(col []int64, op Op, c1, c2 int64, base uint32, out []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeI64(op, c1, c2)
	n := len(col)
	if empty {
		return out
	}
	out = EnsureCap(out, n)
	if all {
		return appendAll(out, n, base)
	}
	k := len(out)
	out = out[:cap(out):cap(out)]
	if ne {
		for i, v := range col {
			out[k] = base + uint32(i)
			k += int(b2u(v != lo))
		}
	} else {
		for i, v := range col {
			out[k] = base + uint32(i)
			k += int(b2u(v >= lo && v <= hi))
		}
	}
	return out[:k]
}

// PositionsFromBitmapBranchy converts a bitmap of n match bits into a
// position vector by iterating over the bits of each word — the conversion
// whose branch misses make bit-packed scans selectivity-sensitive (§5.4).
func PositionsFromBitmapBranchy(bm []uint64, n int, base uint32, out []uint32) []uint32 {
	out = EnsureCap(out, n)
	for i := 0; i < n; i++ {
		if bm[i>>6]>>(uint(i)&63)&1 == 1 {
			k := len(out)
			out = out[: k+1 : cap(out)]
			out[k] = base + uint32(i)
		}
	}
	return out
}

// PositionsFromBitmap converts a bitmap into a position vector using the
// precomputed positions table, eight bits at a time — the fix the paper
// applies to make bit-packing robust in Figure 12a.
func PositionsFromBitmap(bm []uint64, n int, base uint32, out []uint32) []uint32 {
	out = EnsureCap(out, n+8)
	i := 0
	for ; i+64 <= n; i += 64 {
		w := bm[i>>6]
		for b := 0; b < 64; b += 8 {
			out = emit(out, uint32(w>>uint(b))&0xFF, base+uint32(i+b))
		}
	}
	for ; i < n; i++ {
		if bm[i>>6]>>(uint(i)&63)&1 == 1 {
			k := len(out)
			out = out[: k+1 : cap(out)]
			out[k] = base + uint32(i)
		}
	}
	return out
}
