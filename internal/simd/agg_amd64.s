// AVX2 aggregation and hash kernels (agg_amd64.go wrappers).
//
// Bit-identity contract: float64 folds keep the exact element order of the
// portable loops (IEEE addition and min/max are not reassociable), so their
// wins come from branch-free MINSD/MAXSD and dropped bounds checks. The
// int64 min/max fold IS associative, so it runs four lanes wide with
// VPCMPGTQ + VPBLENDVB. The Mix64 batch hash runs four lanes of splitmix64
// with the 64x64 multiply decomposed into three VPMULUDQ products.
//
// X registers alias the low halves of the same-numbered Y registers; the
// vector kernels keep constants in Y12-Y15 and scratch in Y8-Y11 so scalar
// X0-X3 code in the same file never collides.

#include "textflag.h"

// func sumF64DenseAVX2asm(acc float64, data *float64, n int) float64
TEXT ·sumF64DenseAVX2asm(SB), NOSPLIT, $0-32
	MOVSD acc+0(FP), X0
	MOVQ  data+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVQ  CX, DX
	ANDQ  $-4, DX
	XORQ  R10, R10
	CMPQ  DX, $0
	JEQ   sdtail
sd4:
	ADDSD (SI)(R10*8), X0
	ADDSD 8(SI)(R10*8), X0
	ADDSD 16(SI)(R10*8), X0
	ADDSD 24(SI)(R10*8), X0
	ADDQ  $4, R10
	CMPQ  R10, DX
	JLT   sd4
sdtail:
	CMPQ  R10, CX
	JGE   sddone
	ADDSD (SI)(R10*8), X0
	INCQ  R10
	JMP   sdtail
sddone:
	MOVSD X0, ret+24(FP)
	RET

// func sumF64MaskedAVX2asm(acc float64, data *float64, nulls *byte, n int) (float64, int64)
TEXT ·sumF64MaskedAVX2asm(SB), NOSPLIT, $0-48
	MOVSD acc+0(FP), X0
	MOVQ  data+8(FP), SI
	MOVQ  nulls+16(FP), DX
	MOVQ  n+24(FP), CX
	XORQ  R13, R13
	XORQ  R10, R10
sm:
	CMPQ  R10, CX
	JGE   smdone
	CMPB  (DX)(R10*1), $0
	JNE   smskip
	ADDSD (SI)(R10*8), X0
	INCQ  R13
smskip:
	INCQ  R10
	JMP   sm
smdone:
	MOVSD X0, acc2+32(FP)
	MOVQ  R13, cnt+40(FP)
	RET

// func minMaxI64DenseAVX2asm(data *int64, n int) (mn, mx int64)
// n >= 1. Four-wide fold: Y0 = running min lanes, Y1 = running max lanes.
TEXT ·minMaxI64DenseAVX2asm(SB), NOSPLIT, $0-32
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ (SI), AX
	MOVQ AX, BX
	MOVQ $1, R10
	CMPQ CX, $8
	JLT  mitail
	VMOVDQU (SI), Y0
	VMOVDQU (SI), Y1
	MOVQ CX, DX
	ANDQ $-4, DX
	MOVQ $4, R10
mi4:
	VMOVDQU  (SI)(R10*8), Y2
	VPCMPGTQ Y2, Y0, Y3
	VPBLENDVB Y3, Y2, Y0, Y0
	VPCMPGTQ Y1, Y2, Y3
	VPBLENDVB Y3, Y2, Y1, Y1
	ADDQ     $4, R10
	CMPQ     R10, DX
	JLT      mi4
	VEXTRACTI128 $1, Y0, X2
	VPCMPGTQ  X2, X0, X3
	VPBLENDVB X3, X2, X0, X0
	VPSHUFD   $0xEE, X0, X2
	VPCMPGTQ  X2, X0, X3
	VPBLENDVB X3, X2, X0, X0
	MOVQ      X0, AX
	VEXTRACTI128 $1, Y1, X2
	VPCMPGTQ  X1, X2, X3
	VPBLENDVB X3, X2, X1, X1
	VPSHUFD   $0xEE, X1, X2
	VPCMPGTQ  X1, X2, X3
	VPBLENDVB X3, X2, X1, X1
	MOVQ      X1, BX
	VZEROUPPER
mitail:
	CMPQ R10, CX
	JGE  midone
	MOVQ (SI)(R10*8), R12
	CMPQ R12, AX
	CMOVQLT R12, AX
	CMPQ R12, BX
	CMOVQGT R12, BX
	INCQ R10
	JMP  mitail
midone:
	MOVQ AX, mn+16(FP)
	MOVQ BX, mx+24(FP)
	RET

// func minMaxI64MaskedAVX2asm(data *int64, nulls *byte, n int) (mn, mx int64, any bool)
// mn/mx stay zero when every position is NULL, matching the portable loop.
TEXT ·minMaxI64MaskedAVX2asm(SB), NOSPLIT, $0-41
	MOVQ data+0(FP), SI
	MOVQ nulls+8(FP), DX
	MOVQ n+16(FP), CX
	XORQ AX, AX
	XORQ BX, BX
	XORQ R13, R13
	XORQ R10, R10
mm:
	CMPQ  R10, CX
	JGE   mmdone
	CMPB  (DX)(R10*1), $0
	JNE   mmskip
	MOVQ  (SI)(R10*8), R12
	TESTQ R13, R13
	JNZ   mmfold
	MOVQ  R12, AX
	MOVQ  R12, BX
	MOVQ  $1, R13
	JMP   mmskip
mmfold:
	CMPQ    R12, AX
	CMOVQLT R12, AX
	CMPQ    R12, BX
	CMOVQGT R12, BX
mmskip:
	INCQ R10
	JMP  mm
mmdone:
	MOVQ AX, mn+24(FP)
	MOVQ BX, mx+32(FP)
	MOVB R13, any+40(FP)
	RET

// func minMaxF64DenseAVX2asm(data *float64, n int) (mn, mx float64)
// n >= 1. Strict element order; MINSD/MAXSD computed with the new value as
// SRC1 so NaN and signed-zero handling matches the portable
// "v < mn ? v : mn" fold exactly.
TEXT ·minMaxF64DenseAVX2asm(SB), NOSPLIT, $0-32
	MOVQ  data+0(FP), SI
	MOVQ  n+8(FP), CX
	MOVSD (SI), X0
	MOVAPD X0, X1
	MOVQ  $1, R10
mf:
	CMPQ   R10, CX
	JGE    mfdone
	MOVSD  (SI)(R10*8), X2
	MOVAPD X2, X3
	MINSD  X0, X2
	MOVAPD X2, X0
	MAXSD  X1, X3
	MOVAPD X3, X1
	INCQ   R10
	JMP    mf
mfdone:
	MOVSD X0, mn+16(FP)
	MOVSD X1, mx+24(FP)
	RET

// func minMaxF64MaskedAVX2asm(data *float64, nulls *byte, n int) (mn, mx float64, any bool)
TEXT ·minMaxF64MaskedAVX2asm(SB), NOSPLIT, $0-41
	MOVQ  data+0(FP), SI
	MOVQ  nulls+8(FP), DX
	MOVQ  n+16(FP), CX
	PXOR  X0, X0
	PXOR  X1, X1
	XORQ  R13, R13
	XORQ  R10, R10
mg:
	CMPQ  R10, CX
	JGE   mgdone
	CMPB  (DX)(R10*1), $0
	JNE   mgskip
	MOVSD (SI)(R10*8), X2
	TESTQ R13, R13
	JNZ   mgfold
	MOVAPD X2, X0
	MOVAPD X2, X1
	MOVQ  $1, R13
	JMP   mgskip
mgfold:
	MOVAPD X2, X3
	MINSD  X0, X2
	MOVAPD X2, X0
	MAXSD  X1, X3
	MOVAPD X3, X1
mgskip:
	INCQ R10
	JMP  mg
mgdone:
	MOVSD X0, mn+24(FP)
	MOVSD X1, mx+32(FP)
	MOVB  R13, any+40(FP)
	RET

// Four-lane splitmix64. MUL64 computes Y0 *= C with the 64x64 low product
// decomposed as lo*lo + ((hi*lo + lo*hi) << 32); VPMULUDQ reads only the
// low 32 bits of each lane, so Yc holds the full constant and Ychi the
// constant shifted right 32. Scratch: Y9-Y11.
#define XSHIFT(k) \
	VPSRLQ $k, Y0, Y9 \
	VPXOR  Y9, Y0, Y0

#define MUL64(Yc, Ychi) \
	VPMULUDQ Yc, Y0, Y9    \
	VPSRLQ   $32, Y0, Y10  \
	VPMULUDQ Yc, Y10, Y10  \
	VPMULUDQ Ychi, Y0, Y11 \
	VPADDQ   Y10, Y11, Y10 \
	VPSLLQ   $32, Y10, Y10 \
	VPADDQ   Y10, Y9, Y0

#define MIX64 \
	XSHIFT(30)       \
	MUL64(Y12, Y13)  \
	XSHIFT(27)       \
	MUL64(Y14, Y15)  \
	XSHIFT(31)

#define MIX64_CONSTS \
	MOVQ $0xbf58476d1ce4e5b9, AX \
	MOVQ AX, X12                 \
	VPBROADCASTQ X12, Y12        \
	SHRQ $32, AX                 \
	MOVQ AX, X13                 \
	VPBROADCASTQ X13, Y13        \
	MOVQ $0x94d049bb133111eb, AX \
	MOVQ AX, X14                 \
	VPBROADCASTQ X14, Y14        \
	SHRQ $32, AX                 \
	MOVQ AX, X15                 \
	VPBROADCASTQ X15, Y15

// func mix64BatchAVX2(src, out unsafe.Pointer, n4 int)
// out[i] = Mix64(src[i]) for i < n4; n4 is a positive multiple of 4.
TEXT ·mix64BatchAVX2(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ out+8(FP), DI
	MOVQ n4+16(FP), DX
	MIX64_CONSTS
	XORQ R10, R10
hb4:
	VMOVDQU (SI)(R10*8), Y0
	MIX64
	VMOVDQU Y0, (DI)(R10*8)
	ADDQ    $4, R10
	CMPQ    R10, DX
	JLT     hb4
	VZEROUPPER
	RET

// func mix64CombineAVX2(hs, src unsafe.Pointer, n4 int)
// hs[i] = Mix64(hs[i] ^ Mix64(src[i])) for i < n4; n4 a positive multiple of 4.
TEXT ·mix64CombineAVX2(SB), NOSPLIT, $0-24
	MOVQ hs+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n4+16(FP), DX
	MIX64_CONSTS
	XORQ R10, R10
hc4:
	VMOVDQU (SI)(R10*8), Y0
	MIX64
	VMOVDQU (DI)(R10*8), Y8
	VPXOR   Y8, Y0, Y0
	MIX64
	VMOVDQU Y0, (DI)(R10*8)
	ADDQ    $4, R10
	CMPQ    R10, DX
	JLT     hc4
	VZEROUPPER
	RET
