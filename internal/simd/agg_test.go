package simd

import (
	"math"
	"testing"
)

func TestSumFloat64SeedsAccumulator(t *testing.T) {
	vals := []float64{0.1, 0.2, 0.3, 0.4}
	nulls := []bool{false, true, false, false}
	// Folding into the accumulator must match scalar row-order addition
	// bit for bit (no batch-local reassociation).
	want := 1.5
	for i, v := range vals {
		if !nulls[i] {
			want += v
		}
	}
	got, cnt := SumFloat64(1.5, vals, nulls)
	if math.Float64bits(got) != math.Float64bits(want) || cnt != 3 {
		t.Fatalf("SumFloat64 = (%v, %d), want (%v, 3)", got, cnt, want)
	}
	got, cnt = SumFloat64(0, vals, nil)
	if got != 1.0 || cnt != 4 {
		t.Fatalf("SumFloat64 no-nulls = (%v, %d)", got, cnt)
	}
}

func TestCountNotNull(t *testing.T) {
	if c := CountNotNull(5, nil); c != 5 {
		t.Fatalf("nil nulls: %d", c)
	}
	if c := CountNotNull(4, []bool{true, false, true, false, true}); c != 2 {
		t.Fatalf("masked: %d", c)
	}
}

func TestMinMaxKernels(t *testing.T) {
	mn, mx, any := MinMaxInt64([]int64{5, -2, 9}, []bool{false, false, true})
	if !any || mn != -2 || mx != 5 {
		t.Fatalf("MinMaxInt64 = (%d,%d,%v)", mn, mx, any)
	}
	if _, _, got := MinMaxInt64([]int64{1}, []bool{true}); got {
		t.Fatal("all-null vector reported a value")
	}
	fm, fx, any := MinMaxFloat64([]float64{1.5, -0.5, 2.5}, nil)
	if !any || fm != -0.5 || fx != 2.5 {
		t.Fatalf("MinMaxFloat64 = (%v,%v,%v)", fm, fx, any)
	}
}

func TestGroupedFolds(t *testing.T) {
	gids := []uint32{0, 1, 0, 1, 0}
	counts := make([]int64, 2)
	GroupCount(counts, gids)
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("GroupCount = %v", counts)
	}
	counts = make([]int64, 2)
	GroupCountNotNull(counts, gids, []bool{false, true, false, false, true})
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("GroupCountNotNull = %v", counts)
	}
	sums := make([]float64, 2)
	cnts := make([]int64, 2)
	GroupSumFloat64(sums, cnts, gids, []float64{1, 2, 3, 4, 5}, []bool{false, false, false, true, false})
	if sums[0] != 9 || sums[1] != 2 || cnts[0] != 3 || cnts[1] != 1 {
		t.Fatalf("GroupSumFloat64 = %v %v", sums, cnts)
	}
	mins, maxs := make([]int64, 2), make([]int64, 2)
	seen := make([]bool, 2)
	GroupMinMaxInt64(mins, maxs, seen, gids, []int64{7, -1, 3, 8, 9}, nil)
	if mins[0] != 3 || maxs[0] != 9 || mins[1] != -1 || maxs[1] != 8 {
		t.Fatalf("GroupMinMaxInt64 = %v %v", mins, maxs)
	}
	fmins, fmaxs := make([]float64, 2), make([]float64, 2)
	seen = make([]bool, 2)
	GroupMinMaxFloat64(fmins, fmaxs, seen, gids, []float64{7, -1, 3, 8, 9}, []bool{false, false, true, false, false})
	if fmins[0] != 7 || fmaxs[0] != 9 || fmins[1] != -1 || fmaxs[1] != 8 {
		t.Fatalf("GroupMinMaxFloat64 = %v %v", fmins, fmaxs)
	}
}

func TestHashKernels(t *testing.T) {
	vals := []int64{0, 1, -1, 1 << 40}
	out := make([]uint64, len(vals))
	HashInt64(vals, out)
	for i, v := range vals {
		if out[i] != Mix64(uint64(v)) {
			t.Fatalf("HashInt64[%d] disagrees with Mix64", i)
		}
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collision on trivial inputs")
	}
	if HashStr("abc") == HashStr("abd") || HashStr("") == HashStr("a") {
		t.Fatal("HashStr collision on trivial inputs")
	}
}
