//go:build amd64

package simd

import (
	"encoding/binary"
	"unsafe"
)

// Assembler stubs (reduce_amd64.s). Each compacts the first r8 entries of
// the match vector m in place (r8 must be a multiple of 8) and returns the
// write cursor; the Go wrappers run the portable scalar loop over the tail
// so results stay bit-identical with the pure-Go kernels.

//go:noescape
func reduceBetweenU8AVX2(data *byte, lo, hi uint64, m *uint32, r8 int) int

//go:noescape
func reduceNeU8AVX2(data *byte, c uint64, m *uint32, r8 int) int

//go:noescape
func reduceBetweenU16AVX2(data *byte, lo, hi uint64, m *uint32, r8 int) int

//go:noescape
func reduceNeU16AVX2(data *byte, c uint64, m *uint32, r8 int) int

//go:noescape
func reduceBetweenU32AVX2(data *byte, lo, hi uint64, m *uint32, r8 int) int

//go:noescape
func reduceNeU32AVX2(data *byte, c uint64, m *uint32, r8 int) int

//go:noescape
func reduceBetweenU64AVX2(data unsafe.Pointer, lo, hi uint64, m *uint32, r8 int) int

//go:noescape
func reduceBetweenI64AVX2asm(data unsafe.Pointer, lo, hi uint64, m *uint32, r8 int) int

//go:noescape
func reduceNe64AVX2(data unsafe.Pointer, c uint64, m *uint32, r8 int) int

//go:noescape
func reduceBitmapWordsAVX2(bm *uint64, want uint64, m *uint32, r8 int) int

func reduceBetweenW1AVX2(data []byte, lo, hi uint8, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceBetweenU8AVX2(&data[0], uint64(lo), uint64(hi), &m[0], r)
	}
	for ; r < len(m); r++ {
		v := data[m[r]]
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW1AVX2(data []byte, c uint8, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceNeU8AVX2(&data[0], uint64(c), &m[0], r)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(data[m[r]] != c))
	}
	return m[:w]
}

func reduceBetweenW2AVX2(data []byte, lo, hi uint16, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceBetweenU16AVX2(&data[0], uint64(lo), uint64(hi), &m[0], r)
	}
	for ; r < len(m); r++ {
		v := binary.LittleEndian.Uint16(data[m[r]*2:])
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW2AVX2(data []byte, c uint16, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceNeU16AVX2(&data[0], uint64(c), &m[0], r)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(binary.LittleEndian.Uint16(data[m[r]*2:]) != c))
	}
	return m[:w]
}

func reduceBetweenW4AVX2(data []byte, lo, hi uint32, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceBetweenU32AVX2(&data[0], uint64(lo), uint64(hi), &m[0], r)
	}
	for ; r < len(m); r++ {
		v := binary.LittleEndian.Uint32(data[m[r]*4:])
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW4AVX2(data []byte, c uint32, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceNeU32AVX2(&data[0], uint64(c), &m[0], r)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(binary.LittleEndian.Uint32(data[m[r]*4:]) != c))
	}
	return m[:w]
}

func reduceBetweenW8AVX2(data []byte, lo, hi uint64, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceBetweenU64AVX2(unsafe.Pointer(&data[0]), lo, hi, &m[0], r)
	}
	for ; r < len(m); r++ {
		v := binary.LittleEndian.Uint64(data[m[r]*8:])
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW8AVX2(data []byte, c uint64, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceNe64AVX2(unsafe.Pointer(&data[0]), c, &m[0], r)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(binary.LittleEndian.Uint64(data[m[r]*8:]) != c))
	}
	return m[:w]
}

func reduceBetweenI64AVX2(col []int64, lo, hi int64, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceBetweenI64AVX2asm(unsafe.Pointer(&col[0]), uint64(lo), uint64(hi), &m[0], r)
	}
	for ; r < len(m); r++ {
		v := col[m[r]]
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeI64AVX2(col []int64, c int64, m []uint32) []uint32 {
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceNe64AVX2(unsafe.Pointer(&col[0]), uint64(c), &m[0], r)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(col[m[r]] != c))
	}
	return m[:w]
}

func reduceBitmapAVX2(bm []uint64, wantSet bool, m []uint32) []uint32 {
	want := uint64(0)
	if wantSet {
		want = 1
	}
	w, r := 0, len(m)&^7
	if r > 0 {
		w = reduceBitmapWordsAVX2(&bm[0], want, &m[0], r)
	}
	for ; r < len(m); r++ {
		p := m[r]
		m[w] = p
		w += int(b2u(bm[p>>6]>>(p&63)&1 == want))
	}
	return m[:w]
}
