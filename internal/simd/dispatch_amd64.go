//go:build amd64

package simd

import "os"

// cpuid and xgetbv0 are implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

func init() {
	cpuHasAVX2 = detectAVX2()
	avx2Active = cpuHasAVX2 && !godebugDisablesAVX2(os.Getenv("GODEBUG"))
	if avx2Active {
		installAVX2()
	}
}

// detectAVX2 reports hardware AVX2 with OS-enabled YMM state: CPUID leaf 1
// must advertise OSXSAVE+AVX, XCR0 must have the XMM and YMM save bits,
// and CPUID leaf 7 must advertise AVX2.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// godebugDisablesAVX2 parses a GODEBUG value the way the runtime does —
// comma-separated key=value, last setting wins — honoring cpu.avx2 and
// cpu.all. (runtime/internal cpu gating is not importable, so the kernel
// dispatcher mirrors the convention.)
func godebugDisablesAVX2(godebug string) bool {
	off := false
	for len(godebug) > 0 {
		kv := godebug
		if i := indexByte(godebug, ','); i >= 0 {
			kv, godebug = godebug[:i], godebug[i+1:]
		} else {
			godebug = ""
		}
		switch kv {
		case "cpu.avx2=off", "cpu.all=off":
			off = true
		case "cpu.avx2=on", "cpu.all=on":
			off = false
		}
	}
	return off
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// installAVX2 points every kernel function variable at its assembler
// implementation. Called once from init, before any kernel can run.
func installAVX2() {
	findBetweenW1Fn = findBetweenW1AVX2
	findNeW1Fn = findNeW1AVX2
	findBetweenW2Fn = findBetweenW2AVX2
	findNeW2Fn = findNeW2AVX2
	findBetweenW4Fn = findBetweenW4AVX2
	findNeW4Fn = findNeW4AVX2
	findBetweenW8Fn = findBetweenW8AVX2
	findNeW8Fn = findNeW8AVX2
	findBetweenI64Fn = findBetweenI64AVX2
	findNeI64Fn = findNeI64AVX2
	findBitmapFn = findBitmapAVX2
	reduceBetweenW1Fn = reduceBetweenW1AVX2
	reduceNeW1Fn = reduceNeW1AVX2
	reduceBetweenW2Fn = reduceBetweenW2AVX2
	reduceNeW2Fn = reduceNeW2AVX2
	reduceBetweenW4Fn = reduceBetweenW4AVX2
	reduceNeW4Fn = reduceNeW4AVX2
	reduceBetweenW8Fn = reduceBetweenW8AVX2
	reduceNeW8Fn = reduceNeW8AVX2
	reduceBetweenI64Fn = reduceBetweenI64AVX2
	reduceNeI64Fn = reduceNeI64AVX2
	reduceBitmapFn = reduceBitmapAVX2
	sumF64DenseFn = sumFloat64DenseAVX2
	sumF64MaskedFn = sumFloat64MaskedAVX2
	minMaxI64DenseFn = minMaxInt64DenseAVX2
	minMaxI64MaskFn = minMaxInt64MaskedAVX2
	minMaxF64DenseFn = minMaxFloat64DenseAVX2
	minMaxF64MaskFn = minMaxFloat64MaskedAVX2
	hashI64Fn = hashInt64AVX2
	hashF64Fn = hashFloat64AVX2
	hashCombineI64Fn = hashCombineInt64AVX2
	hashCombineF64Fn = hashCombineFloat64AVX2
	for _, k := range []string{
		"find.w1", "find.w2", "find.w4", "find.w8",
		"find.int64", "find.bitmap",
		"reduce.w1", "reduce.w2", "reduce.w4", "reduce.w8",
		"reduce.int64", "reduce.bitmap",
		"agg.sum_f64", "agg.minmax_i64", "agg.minmax_f64",
		"hash.mix64",
	} {
		avx2Kernels[k] = true
	}
}
