package simd

import (
	"encoding/binary"
	"math"
)

// maxFor returns the largest value representable in width bytes.
func maxFor(width int) uint64 {
	if width >= 8 {
		return math.MaxUint64
	}
	return 1<<(8*uint(width)) - 1
}

// normalizeU rewrites op/c1/c2 over an unsigned domain [0, max] into an
// inclusive between [lo, hi], a not-equal test, an empty match, or an
// all-match. Centralizing this means each width needs only two hot loops.
func normalizeU(op Op, c1, c2, max uint64) (lo, hi uint64, ne, empty, all bool) {
	switch op {
	case OpEq:
		if c1 > max {
			return 0, 0, false, true, false
		}
		return c1, c1, false, false, false
	case OpNe:
		if c1 > max {
			return 0, max, false, false, true
		}
		return c1, c1, true, false, false
	case OpLt:
		if c1 == 0 {
			return 0, 0, false, true, false
		}
		c1--
		fallthrough
	case OpLe:
		if c1 >= max {
			return 0, max, false, false, true
		}
		return 0, c1, false, false, false
	case OpGt:
		if c1 >= max {
			return 0, 0, false, true, false
		}
		c1++
		fallthrough
	case OpGe:
		if c1 > max {
			return 0, 0, false, true, false
		}
		if c1 == 0 {
			return 0, max, false, false, true
		}
		return c1, max, false, false, false
	default: // OpBetween
		if c1 > c2 || c1 > max {
			return 0, 0, false, true, false
		}
		if c2 > max {
			c2 = max
		}
		if c1 == 0 && c2 == max {
			return 0, max, false, false, true
		}
		return c1, c2, false, false, false
	}
}

// Find appends to out the positions (offset by base) of the elements in the
// n-element little-endian vector data (width bytes per element) satisfying
// op against c1 (and c2 for OpBetween). It returns the extended slice.
//
// This is the paper's "find initial matches" (Figure 7a): vector compare,
// movemask, positions-table lookup, unconditional 8-wide store.
//
//dbvet:hotpath
func Find(data []byte, width, n int, op Op, c1, c2 uint64, base uint32, out []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeU(op, c1, c2, maxFor(width))
	if empty {
		return out
	}
	out = EnsureCap(out, n+8)
	if all {
		return appendAll(out, n, base)
	}
	if ne {
		switch width {
		case 1:
			return findNeW1Fn(data, n, uint8(lo), base, out)
		case 2:
			return findNeW2Fn(data, n, uint16(lo), base, out)
		case 4:
			return findNeW4Fn(data, n, uint32(lo), base, out)
		default:
			return findNeW8Fn(data, n, lo, base, out)
		}
	}
	switch width {
	case 1:
		return findBetweenW1Fn(data, n, uint8(lo), uint8(hi), base, out)
	case 2:
		return findBetweenW2Fn(data, n, uint16(lo), uint16(hi), base, out)
	case 4:
		return findBetweenW4Fn(data, n, uint32(lo), uint32(hi), base, out)
	default:
		return findBetweenW8Fn(data, n, lo, hi, base, out)
	}
}

// Sequence appends the n consecutive positions base..base+n-1 to out,
// growing it as needed. It seeds match vectors for scans without SARGable
// predicates.
func Sequence(out []uint32, n int, base uint32) []uint32 {
	return appendAll(EnsureCap(out, n), n, base)
}

// appendAll emits every position — the paper's optimization for fully
// qualifying vectors (§4.1).
func appendAll(out []uint32, n int, base uint32) []uint32 {
	k := len(out)
	out = out[: k+n : cap(out)]
	for i := 0; i < n; i++ {
		out[k+i] = base + uint32(i)
	}
	return out
}

// findBetweenW1 compares eight 8-bit lanes per 64-bit word. Lanes are split
// into even/odd 16-bit containers so the biased adds and subtracts cannot
// carry across lanes; bit 8 of each container is the comparison flag.
func findBetweenW1(data []byte, n int, lo, hi uint8, base uint32, out []uint32) []uint32 {
	geAdd := splat16(0x100 - uint64(lo))
	leSub := splat16(uint64(hi)) | bit8s
	i := 0
	for ; i+8 <= n; i += 8 {
		w := load64(data, i)
		xe := w & even8
		xo := (w >> 8) & even8
		me := half8(xe+geAdd) & half8(leSub-xe)
		mo := half8(xo+geAdd) & half8(leSub-xo)
		out = emit(out, spread4[me]|spread4[mo]<<1, base+uint32(i))
	}
	for ; i < n; i++ {
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(data[i] >= lo && data[i] <= hi)) : cap(out)]
	}
	return out
}

// findNeW1 keeps lanes whose value differs from c. A per-container add of
// 0xFF sets bit 8 exactly when the xor with the splatted constant is
// non-zero.
func findNeW1(data []byte, n int, c uint8, base uint32, out []uint32) []uint32 {
	cs := splat16(uint64(c))
	i := 0
	for ; i+8 <= n; i += 8 {
		w := load64(data, i)
		ze := (w & even8) ^ cs
		zo := ((w >> 8) & even8) ^ cs
		me := half8(ze + even8)
		mo := half8(zo + even8)
		out = emit(out, spread4[me]|spread4[mo]<<1, base+uint32(i))
	}
	for ; i < n; i++ {
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(data[i] != c)) : cap(out)]
	}
	return out
}

// mask4w2 builds the 4-lane mask of one 64-bit word holding four 16-bit
// lanes, given the even- and odd-container 2-bit half masks.
func mask4w2(me, mo uint32) uint32 {
	return me&1 | (mo&1)<<1 | (me>>1)<<2 | (mo>>1)<<3
}

func findBetweenW2(data []byte, n int, lo, hi uint16, base uint32, out []uint32) []uint32 {
	geAdd := splat32(0x10000 - uint64(lo))
	leSub := splat32(uint64(hi)) | bit16s
	i := 0
	for ; i+8 <= n; i += 8 {
		w0 := load64(data, i*2)
		w1 := load64(data, i*2+8)
		x0e := w0 & even16
		x0o := (w0 >> 16) & even16
		x1e := w1 & even16
		x1o := (w1 >> 16) & even16
		m0 := mask4w2(half16(x0e+geAdd)&half16(leSub-x0e), half16(x0o+geAdd)&half16(leSub-x0o))
		m1 := mask4w2(half16(x1e+geAdd)&half16(leSub-x1e), half16(x1o+geAdd)&half16(leSub-x1o))
		out = emit(out, m0|m1<<4, base+uint32(i))
	}
	for ; i < n; i++ {
		v := binary.LittleEndian.Uint16(data[i*2:])
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(v >= lo && v <= hi)) : cap(out)]
	}
	return out
}

func findNeW2(data []byte, n int, c uint16, base uint32, out []uint32) []uint32 {
	cs := splat32(uint64(c))
	i := 0
	for ; i+8 <= n; i += 8 {
		w0 := load64(data, i*2)
		w1 := load64(data, i*2+8)
		m0 := mask4w2(half16(((w0&even16)^cs)+even16), half16((((w0>>16)&even16)^cs)+even16))
		m1 := mask4w2(half16(((w1&even16)^cs)+even16), half16((((w1>>16)&even16)^cs)+even16))
		out = emit(out, m0|m1<<4, base+uint32(i))
	}
	for ; i < n; i++ {
		v := binary.LittleEndian.Uint16(data[i*2:])
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(v != c)) : cap(out)]
	}
	return out
}

// findBetweenW4 processes two 32-bit lanes per word; the comparison itself is
// a branch-free scalar test, but match extraction still uses the positions
// table, keeping the kernel selectivity-insensitive. Mirrors the paper's
// shrinking SIMD gains at 32-bit lanes.
func findBetweenW4(data []byte, n int, lo, hi uint32, base uint32, out []uint32) []uint32 {
	i := 0
	for ; i+8 <= n; i += 8 {
		var mask uint32
		for j := 0; j < 8; j += 2 {
			w := load64(data, (i+j)*4)
			a := uint32(w)
			b := uint32(w >> 32)
			mask |= b2u(a >= lo && a <= hi) << uint(j)
			mask |= b2u(b >= lo && b <= hi) << uint(j+1)
		}
		out = emit(out, mask, base+uint32(i))
	}
	for ; i < n; i++ {
		v := binary.LittleEndian.Uint32(data[i*4:])
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(v >= lo && v <= hi)) : cap(out)]
	}
	return out
}

func findNeW4(data []byte, n int, c uint32, base uint32, out []uint32) []uint32 {
	i := 0
	for ; i+8 <= n; i += 8 {
		var mask uint32
		for j := 0; j < 8; j += 2 {
			w := load64(data, (i+j)*4)
			mask |= b2u(uint32(w) != c) << uint(j)
			mask |= b2u(uint32(w>>32) != c) << uint(j+1)
		}
		out = emit(out, mask, base+uint32(i))
	}
	for ; i < n; i++ {
		v := binary.LittleEndian.Uint32(data[i*4:])
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(v != c)) : cap(out)]
	}
	return out
}

func findBetweenW8(data []byte, n int, lo, hi uint64, base uint32, out []uint32) []uint32 {
	i := 0
	for ; i+8 <= n; i += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			v := load64(data, (i+j)*8)
			mask |= b2u(v >= lo && v <= hi) << uint(j)
		}
		out = emit(out, mask, base+uint32(i))
	}
	for ; i < n; i++ {
		v := load64(data, i*8)
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(v >= lo && v <= hi)) : cap(out)]
	}
	return out
}

func findNeW8(data []byte, n int, c uint64, base uint32, out []uint32) []uint32 {
	i := 0
	for ; i+8 <= n; i += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			mask |= b2u(load64(data, (i+j)*8) != c) << uint(j)
		}
		out = emit(out, mask, base+uint32(i))
	}
	for ; i < n; i++ {
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(load64(data, i*8) != c)) : cap(out)]
	}
	return out
}

// normalizeI64 rewrites op/c1/c2 over the signed 64-bit domain into an
// inclusive between, a not-equal test, an empty match, or an all-match.
func normalizeI64(op Op, c1, c2 int64) (lo, hi int64, ne, empty, all bool) {
	const (
		minI = math.MinInt64
		maxI = math.MaxInt64
	)
	switch op {
	case OpEq:
		return c1, c1, false, false, false
	case OpNe:
		return c1, c1, true, false, false
	case OpLt:
		if c1 == minI {
			return 0, 0, false, true, false
		}
		c1--
		fallthrough
	case OpLe:
		if c1 == maxI {
			return 0, 0, false, false, true
		}
		return minI, c1, false, false, false
	case OpGt:
		if c1 == maxI {
			return 0, 0, false, true, false
		}
		c1++
		fallthrough
	case OpGe:
		if c1 == minI {
			return 0, 0, false, false, true
		}
		return c1, maxI, false, false, false
	default: // OpBetween
		if c1 > c2 {
			return 0, 0, false, true, false
		}
		if c1 == minI && c2 == maxI {
			return 0, 0, false, false, true
		}
		return c1, c2, false, false, false
	}
}

// FindInt64 is the find-initial-matches kernel for uncompressed hot chunks
// (signed 64-bit columns). The comparison is branch-free scalar; match
// extraction uses the positions table, so vectorized scans on uncompressed
// data still beat tuple-at-a-time evaluation (§4.1).
//
//dbvet:hotpath
func FindInt64(col []int64, op Op, c1, c2 int64, base uint32, out []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeI64(op, c1, c2)
	n := len(col)
	if empty {
		return out
	}
	out = EnsureCap(out, n+8)
	if all {
		return appendAll(out, n, base)
	}
	if ne {
		return findNeI64Fn(col, lo, base, out)
	}
	return findBetweenI64Fn(col, lo, hi, base, out)
}

func findNeI64(col []int64, c int64, base uint32, out []uint32) []uint32 {
	n := len(col)
	i := 0
	for ; i+8 <= n; i += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			mask |= b2u(col[i+j] != c) << uint(j)
		}
		out = emit(out, mask, base+uint32(i))
	}
	for ; i < n; i++ {
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(col[i] != c)) : cap(out)]
	}
	return out
}

func findBetweenI64(col []int64, lo, hi int64, base uint32, out []uint32) []uint32 {
	n := len(col)
	i := 0
	for ; i+8 <= n; i += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			v := col[i+j]
			mask |= b2u(v >= lo && v <= hi) << uint(j)
		}
		out = emit(out, mask, base+uint32(i))
	}
	for ; i < n; i++ {
		v := col[i]
		k := len(out)
		out = out[: k+1 : cap(out)]
		out[k] = base + uint32(i)
		out = out[: k+int(b2u(v >= lo && v <= hi)) : cap(out)]
	}
	return out
}

// FindFloat64 is the scalar fallback for doubles (the paper's SIMD kernels
// cover integer data only; §4.2).
//
//dbvet:hotpath
func FindFloat64(col []float64, op Op, c1, c2 float64, base uint32, out []uint32) []uint32 {
	n := len(col)
	out = EnsureCap(out, n)
	for i, v := range col {
		var ok bool
		switch op {
		case OpEq:
			ok = v == c1
		case OpNe:
			ok = v != c1
		case OpLt:
			ok = v < c1
		case OpLe:
			ok = v <= c1
		case OpGt:
			ok = v > c1
		case OpGe:
			ok = v >= c1
		default:
			ok = v >= c1 && v <= c2
		}
		if ok {
			k := len(out)
			out = out[: k+1 : cap(out)]
			out[k] = base + uint32(i)
		}
	}
	return out
}

// FindBitmap appends the positions of set (wantSet) or clear bits of the
// n-bit bitmap. Used for IS NULL / IS NOT NULL predicates and for turning
// delete bitmaps into survivor position vectors.
//
//dbvet:hotpath
func FindBitmap(bm []uint64, n int, wantSet bool, base uint32, out []uint32) []uint32 {
	return findBitmapFn(bm, n, wantSet, base, EnsureCap(out, n+8))
}

// findBitmapPortable is the SWAR fallback behind FindBitmap; out already
// has n+8 slack.
func findBitmapPortable(bm []uint64, n int, wantSet bool, base uint32, out []uint32) []uint32 {
	inv := uint64(0)
	if !wantSet {
		inv = ^uint64(0)
	}
	i := 0
	for ; i+64 <= n; i += 64 {
		w := bm[i>>6] ^ inv
		for b := 0; b < 64; b += 8 {
			out = emit(out, uint32(w>>uint(b))&0xFF, base+uint32(i+b))
		}
	}
	for ; i < n; i++ {
		bit := bm[i>>6]>>(uint(i)&63)&1 == 1
		if bit == wantSet {
			k := len(out)
			out = out[: k+1 : cap(out)]
			out[k] = base + uint32(i)
		}
	}
	return out
}
