// AVX2 "reduce matches" kernels (paper §4.2, Figure 7b): gather values at
// the match positions, compare, and compact the match vector in place
// with a VPERMD shuffle driven by the positions table. Gathers are exact-
// width scalar loads (a vector gather of narrow elements would over-read
// past the end of the data vector); the win over the portable code is the
// branch-free SETcc mask build, the single-shuffle compaction, and the
// absence of bounds checks.
//
// Shared register plan:
//   SI  data base      BX  match-vector base   DX  group-element count
//   R10 read cursor    R8  write cursor        R9  ·posTable base
//   AX  lo / c         CX  hi                  R15 mask accumulator
//   R11 position       R12 value               R13/R14 flag scratch
//   Y0  m[r..r+7]      Y1  shuffle control     Y2  compacted lanes

#include "textflag.h"

// COMPACT8 compacts m[r:r+8] by the 8-bit mask in R15 to m[w:], writing
// all eight lanes unconditionally (w+8 <= r+8 <= len(m) keeps it in
// bounds) and advancing w by the match count.
#define COMPACT8 \
	VMOVDQU (BX)(R10*4), Y0    \
	MOVL    R15, R11           \
	LEAQ    (R11)(R11*8), R12  \
	SHLQ    $2, R12            \
	VMOVDQU (R9)(R12*1), Y1    \
	VPERMD  Y0, Y1, Y2         \
	VMOVDQU Y2, (BX)(R8*4)     \
	MOVL    32(R9)(R12*1), R11 \
	ADDQ    R11, R8            \
	ADDQ    $8, R10

// Per-position mask bits. The two SETcc flags are ANDed and masked to
// bit 0 (upper byte-register bits are stale), then shifted into place.

#define RB_W1(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVBLZX (SI)(R11*1), R12      \
	CMPL    R12, AX               \
	SETCC   R13                   \
	CMPL    R12, CX               \
	SETLS   R14                   \
	ANDL    R14, R13              \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RN_W1(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVBLZX (SI)(R11*1), R12      \
	CMPL    R12, AX               \
	SETNE   R13                   \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RB_W2(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVWLZX (SI)(R11*2), R12      \
	CMPL    R12, AX               \
	SETCC   R13                   \
	CMPL    R12, CX               \
	SETLS   R14                   \
	ANDL    R14, R13              \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RN_W2(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVWLZX (SI)(R11*2), R12      \
	CMPL    R12, AX               \
	SETNE   R13                   \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RB_W4(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVL    (SI)(R11*4), R12      \
	CMPL    R12, AX               \
	SETCC   R13                   \
	CMPL    R12, CX               \
	SETLS   R14                   \
	ANDL    R14, R13              \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RN_W4(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVL    (SI)(R11*4), R12      \
	CMPL    R12, AX               \
	SETNE   R13                   \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RB_U64(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVQ    (SI)(R11*8), R12      \
	CMPQ    R12, AX               \
	SETCC   R13                   \
	CMPQ    R12, CX               \
	SETLS   R14                   \
	ANDL    R14, R13              \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RB_I64(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVQ    (SI)(R11*8), R12      \
	CMPQ    R12, AX               \
	SETGE   R13                   \
	CMPQ    R12, CX               \
	SETLE   R14                   \
	ANDL    R14, R13              \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

#define RN_64(j) \
	MOVL    (j*4)(BX)(R10*4), R11 \
	MOVQ    (SI)(R11*8), R12      \
	CMPQ    R12, AX               \
	SETNE   R13                   \
	ANDL    $1, R13               \
	SHLL    $j, R13               \
	ORL     R13, R15

// RBM(j): bit j of the mask is (bm[pos>>6]>>(pos&63)&1 == want); BTQ with
// a register offset performs the full bit-string addressing.
#define RBM(j) \
	MOVL (j*4)(BX)(R10*4), R11 \
	BTQ  R11, (SI)             \
	SETCS R13                  \
	XORL CX, R13               \
	XORL $1, R13               \
	ANDL $1, R13               \
	SHLL $j, R13               \
	ORL  R13, R15

#define REDUCE_LOOP(MASKJ) \
	XORL R15, R15 \
	MASKJ(0)      \
	MASKJ(1)      \
	MASKJ(2)      \
	MASKJ(3)      \
	MASKJ(4)      \
	MASKJ(5)      \
	MASKJ(6)      \
	MASKJ(7)      \
	COMPACT8

// func reduceBetweenU8AVX2(data *byte, lo, hi uint64, m *uint32, r8 int) int
// r8 is a positive multiple of 8; processes m[0:r8], returns w.
TEXT ·reduceBetweenU8AVX2(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ lo+8(FP), AX
	MOVQ hi+16(FP), CX
	MOVQ m+24(FP), BX
	MOVQ r8+32(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rb1:
	REDUCE_LOOP(RB_W1)
	CMPQ R10, DX
	JLT  rb1
	VZEROUPPER
	MOVQ R8, ret+40(FP)
	RET

// func reduceNeU8AVX2(data *byte, c uint64, m *uint32, r8 int) int
TEXT ·reduceNeU8AVX2(SB), NOSPLIT, $0-40
	MOVQ data+0(FP), SI
	MOVQ c+8(FP), AX
	MOVQ m+16(FP), BX
	MOVQ r8+24(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rn1:
	REDUCE_LOOP(RN_W1)
	CMPQ R10, DX
	JLT  rn1
	VZEROUPPER
	MOVQ R8, ret+32(FP)
	RET

// func reduceBetweenU16AVX2(data *byte, lo, hi uint64, m *uint32, r8 int) int
TEXT ·reduceBetweenU16AVX2(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ lo+8(FP), AX
	MOVQ hi+16(FP), CX
	MOVQ m+24(FP), BX
	MOVQ r8+32(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rb2:
	REDUCE_LOOP(RB_W2)
	CMPQ R10, DX
	JLT  rb2
	VZEROUPPER
	MOVQ R8, ret+40(FP)
	RET

// func reduceNeU16AVX2(data *byte, c uint64, m *uint32, r8 int) int
TEXT ·reduceNeU16AVX2(SB), NOSPLIT, $0-40
	MOVQ data+0(FP), SI
	MOVQ c+8(FP), AX
	MOVQ m+16(FP), BX
	MOVQ r8+24(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rn2:
	REDUCE_LOOP(RN_W2)
	CMPQ R10, DX
	JLT  rn2
	VZEROUPPER
	MOVQ R8, ret+32(FP)
	RET

// func reduceBetweenU32AVX2(data *byte, lo, hi uint64, m *uint32, r8 int) int
TEXT ·reduceBetweenU32AVX2(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ lo+8(FP), AX
	MOVQ hi+16(FP), CX
	MOVQ m+24(FP), BX
	MOVQ r8+32(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rb4:
	REDUCE_LOOP(RB_W4)
	CMPQ R10, DX
	JLT  rb4
	VZEROUPPER
	MOVQ R8, ret+40(FP)
	RET

// func reduceNeU32AVX2(data *byte, c uint64, m *uint32, r8 int) int
TEXT ·reduceNeU32AVX2(SB), NOSPLIT, $0-40
	MOVQ data+0(FP), SI
	MOVQ c+8(FP), AX
	MOVQ m+16(FP), BX
	MOVQ r8+24(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rn4:
	REDUCE_LOOP(RN_W4)
	CMPQ R10, DX
	JLT  rn4
	VZEROUPPER
	MOVQ R8, ret+32(FP)
	RET

// func reduceBetweenU64AVX2(data unsafe.Pointer, lo, hi uint64, m *uint32, r8 int) int
TEXT ·reduceBetweenU64AVX2(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ lo+8(FP), AX
	MOVQ hi+16(FP), CX
	MOVQ m+24(FP), BX
	MOVQ r8+32(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rb8u:
	REDUCE_LOOP(RB_U64)
	CMPQ R10, DX
	JLT  rb8u
	VZEROUPPER
	MOVQ R8, ret+40(FP)
	RET

// func reduceBetweenI64AVX2asm(data unsafe.Pointer, lo, hi uint64, m *uint32, r8 int) int
TEXT ·reduceBetweenI64AVX2asm(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ lo+8(FP), AX
	MOVQ hi+16(FP), CX
	MOVQ m+24(FP), BX
	MOVQ r8+32(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rb8i:
	REDUCE_LOOP(RB_I64)
	CMPQ R10, DX
	JLT  rb8i
	VZEROUPPER
	MOVQ R8, ret+40(FP)
	RET

// func reduceNe64AVX2(data unsafe.Pointer, c uint64, m *uint32, r8 int) int
// Equality is sign-agnostic: serves both W8 byte vectors and int64 columns.
TEXT ·reduceNe64AVX2(SB), NOSPLIT, $0-40
	MOVQ data+0(FP), SI
	MOVQ c+8(FP), AX
	MOVQ m+16(FP), BX
	MOVQ r8+24(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rn8:
	REDUCE_LOOP(RN_64)
	CMPQ R10, DX
	JLT  rn8
	VZEROUPPER
	MOVQ R8, ret+32(FP)
	RET

// func reduceBitmapWordsAVX2(bm *uint64, want uint64, m *uint32, r8 int) int
TEXT ·reduceBitmapWordsAVX2(SB), NOSPLIT, $0-40
	MOVQ bm+0(FP), SI
	MOVQ want+8(FP), CX
	MOVQ m+16(FP), BX
	MOVQ r8+24(FP), DX
	LEAQ ·posTable(SB), R9
	XORQ R10, R10
	XORQ R8, R8
rbm:
	REDUCE_LOOP(RBM)
	CMPQ R10, DX
	JLT  rbm
	VZEROUPPER
	MOVQ R8, ret+32(FP)
	RET
