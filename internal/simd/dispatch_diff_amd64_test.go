//go:build amd64

package simd

import (
	"math"
	"math/rand"
	"testing"
)

// Differential tests: every AVX2 kernel must be bit-identical to its
// portable counterpart on arbitrary inputs — including NULL masks, NaN and
// signed-zero payloads, accumulator seeding, and ragged tails. They call
// both implementations directly, so they exercise the assembler even on
// the GODEBUG=cpu.avx2=off CI leg (dispatch state doesn't matter, only
// hardware capability).

func requireAVX2(t *testing.T) {
	t.Helper()
	if !cpuHasAVX2 {
		t.Skip("host CPU lacks AVX2")
	}
}

func randLens(rng *rand.Rand) []int {
	lens := []int{0, 1, 7, 8, 15, 31, 32, 33, 63, 64, 65, 255, 1024}
	for i := 0; i < 8; i++ {
		lens = append(lens, rng.Intn(4096))
	}
	return lens
}

func eqU32(t *testing.T, label string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d want %d", label, i, got[i], want[i])
		}
	}
}

func TestDiffFindKernels(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(101))
	for _, n := range randLens(rng) {
		data := make([]byte, n*8)
		rng.Read(data)
		base := uint32(rng.Intn(1 << 20))
		lo, hi := rng.Uint64(), rng.Uint64()
		if lo > hi {
			lo, hi = hi, lo
		}
		out1 := EnsureCap(nil, n+8)
		out2 := EnsureCap(nil, n+8)

		eqU32(t, "find.w1.between",
			findBetweenW1AVX2(data[:n], n, uint8(lo), uint8(hi), base, out1),
			findBetweenW1(data[:n], n, uint8(lo), uint8(hi), base, out2))
		eqU32(t, "find.w1.ne",
			findNeW1AVX2(data[:n], n, uint8(lo), base, out1[:0]),
			findNeW1(data[:n], n, uint8(lo), base, out2[:0]))
		eqU32(t, "find.w2.between",
			findBetweenW2AVX2(data[:n*2], n, uint16(lo), uint16(hi), base, out1[:0]),
			findBetweenW2(data[:n*2], n, uint16(lo), uint16(hi), base, out2[:0]))
		eqU32(t, "find.w2.ne",
			findNeW2AVX2(data[:n*2], n, uint16(lo), base, out1[:0]),
			findNeW2(data[:n*2], n, uint16(lo), base, out2[:0]))
		eqU32(t, "find.w4.between",
			findBetweenW4AVX2(data[:n*4], n, uint32(lo), uint32(hi), base, out1[:0]),
			findBetweenW4(data[:n*4], n, uint32(lo), uint32(hi), base, out2[:0]))
		eqU32(t, "find.w4.ne",
			findNeW4AVX2(data[:n*4], n, uint32(lo), base, out1[:0]),
			findNeW4(data[:n*4], n, uint32(lo), base, out2[:0]))
		eqU32(t, "find.w8.between",
			findBetweenW8AVX2(data, n, lo, hi, base, out1[:0]),
			findBetweenW8(data, n, lo, hi, base, out2[:0]))
		eqU32(t, "find.w8.ne",
			findNeW8AVX2(data, n, lo, base, out1[:0]),
			findNeW8(data, n, lo, base, out2[:0]))

		col := make([]int64, n)
		for i := range col {
			col[i] = int64(rng.Uint64())
		}
		slo, shi := int64(rng.Uint64()), int64(rng.Uint64())
		if slo > shi {
			slo, shi = shi, slo
		}
		eqU32(t, "find.int64.between",
			findBetweenI64AVX2(col, slo, shi, base, out1[:0]),
			findBetweenI64(col, slo, shi, base, out2[:0]))
		c := slo
		if n > 0 && rng.Intn(2) == 0 {
			c = col[rng.Intn(n)]
		}
		eqU32(t, "find.int64.ne",
			findNeI64AVX2(col, c, base, out1[:0]),
			findNeI64(col, c, base, out2[:0]))

		bm := make([]uint64, BitmapWords(n))
		for i := range bm {
			bm[i] = rng.Uint64()
		}
		for _, wantSet := range []bool{true, false} {
			eqU32(t, "find.bitmap",
				findBitmapAVX2(bm, n, wantSet, base, out1[:0]),
				findBitmapPortable(bm, n, wantSet, base, out2[:0]))
		}
	}
}

// randMatches builds a sorted random subset of [0, n) as a match vector.
func randMatches(rng *rand.Rand, n int, sel float64) []uint32 {
	m := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < sel {
			m = append(m, uint32(i))
		}
	}
	return m
}

func TestDiffReduceKernels(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(202))
	for _, n := range randLens(rng) {
		for _, sel := range []float64{0, 0.01, 0.5, 1} {
			data := make([]byte, n*8)
			rng.Read(data)
			lo, hi := rng.Uint64(), rng.Uint64()
			if lo > hi {
				lo, hi = hi, lo
			}
			m := randMatches(rng, n, sel)
			m2 := append([]uint32(nil), m...)
			eqU32(t, "reduce.w1.between",
				reduceBetweenW1AVX2(data[:n], uint8(lo), uint8(hi), append([]uint32(nil), m...)),
				reduceBetweenW1(data[:n], uint8(lo), uint8(hi), append([]uint32(nil), m...)))
			eqU32(t, "reduce.w1.ne",
				reduceNeW1AVX2(data[:n], uint8(lo), append([]uint32(nil), m...)),
				reduceNeW1(data[:n], uint8(lo), append([]uint32(nil), m...)))
			eqU32(t, "reduce.w2.between",
				reduceBetweenW2AVX2(data[:n*2], uint16(lo), uint16(hi), append([]uint32(nil), m...)),
				reduceBetweenW2(data[:n*2], uint16(lo), uint16(hi), append([]uint32(nil), m...)))
			eqU32(t, "reduce.w2.ne",
				reduceNeW2AVX2(data[:n*2], uint16(lo), append([]uint32(nil), m...)),
				reduceNeW2(data[:n*2], uint16(lo), append([]uint32(nil), m...)))
			eqU32(t, "reduce.w4.between",
				reduceBetweenW4AVX2(data[:n*4], uint32(lo), uint32(hi), append([]uint32(nil), m...)),
				reduceBetweenW4(data[:n*4], uint32(lo), uint32(hi), append([]uint32(nil), m...)))
			eqU32(t, "reduce.w4.ne",
				reduceNeW4AVX2(data[:n*4], uint32(lo), append([]uint32(nil), m...)),
				reduceNeW4(data[:n*4], uint32(lo), append([]uint32(nil), m...)))
			eqU32(t, "reduce.w8.between",
				reduceBetweenW8AVX2(data, lo, hi, append([]uint32(nil), m...)),
				reduceBetweenW8(data, lo, hi, append([]uint32(nil), m...)))
			eqU32(t, "reduce.w8.ne",
				reduceNeW8AVX2(data, lo, append([]uint32(nil), m...)),
				reduceNeW8(data, lo, append([]uint32(nil), m...)))

			col := make([]int64, n)
			for i := range col {
				col[i] = rng.Int63n(1000) - 500
			}
			eqU32(t, "reduce.int64.between",
				reduceBetweenI64AVX2(col, -100, 100, append([]uint32(nil), m...)),
				reduceBetweenI64(col, -100, 100, append([]uint32(nil), m...)))
			eqU32(t, "reduce.int64.ne",
				reduceNeI64AVX2(col, 0, append([]uint32(nil), m...)),
				reduceNeI64(col, 0, append([]uint32(nil), m...)))

			bm := make([]uint64, BitmapWords(n))
			for i := range bm {
				bm[i] = rng.Uint64()
			}
			for _, wantSet := range []bool{true, false} {
				eqU32(t, "reduce.bitmap",
					reduceBitmapAVX2(bm, wantSet, append([]uint32(nil), m...)),
					reduceBitmapPortable(bm, wantSet, append([]uint32(nil), m2...)))
			}
		}
	}
}

// randFloats mixes ordinary values with NaN, infinities and signed zeros —
// the payloads that expose any fold-order deviation.
func randFloats(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		switch rng.Intn(10) {
		case 0:
			vals[i] = math.NaN()
		case 1:
			vals[i] = math.Inf(1)
		case 2:
			vals[i] = math.Inf(-1)
		case 3:
			vals[i] = math.Copysign(0, -1)
		case 4:
			vals[i] = 0
		default:
			vals[i] = rng.NormFloat64() * 1e6
		}
	}
	return vals
}

func randNulls(rng *rand.Rand, n int, p float64) []bool {
	nulls := make([]bool, n)
	for i := range nulls {
		nulls[i] = rng.Float64() < p
	}
	return nulls
}

func TestDiffAggKernels(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(303))
	for _, n := range randLens(rng) {
		vals := randFloats(rng, n)
		acc := rng.NormFloat64()

		gotS := sumFloat64DenseAVX2(acc, vals)
		wantS := sumFloat64Dense(acc, vals)
		if math.Float64bits(gotS) != math.Float64bits(wantS) {
			t.Fatalf("sum dense n=%d: %x want %x", n, math.Float64bits(gotS), math.Float64bits(wantS))
		}
		for _, p := range []float64{0, 0.3, 1} {
			nulls := randNulls(rng, n, p)
			gs, gc := sumFloat64MaskedAVX2(acc, vals, nulls)
			ws, wc := sumFloat64Masked(acc, vals, nulls)
			if math.Float64bits(gs) != math.Float64bits(ws) || gc != wc {
				t.Fatalf("sum masked n=%d p=%v: (%x,%d) want (%x,%d)",
					n, p, math.Float64bits(gs), gc, math.Float64bits(ws), wc)
			}

			gmn, gmx, gany := minMaxFloat64MaskedAVX2(vals, nulls)
			wmn, wmx, wany := minMaxFloat64Masked(vals, nulls)
			if math.Float64bits(gmn) != math.Float64bits(wmn) ||
				math.Float64bits(gmx) != math.Float64bits(wmx) || gany != wany {
				t.Fatalf("minmax f64 masked n=%d p=%v: (%v,%v,%v) want (%v,%v,%v)",
					n, p, gmn, gmx, gany, wmn, wmx, wany)
			}
		}
		if n > 0 {
			gmn, gmx := minMaxFloat64DenseAVX2(vals)
			wmn, wmx := minMaxFloat64Dense(vals)
			if math.Float64bits(gmn) != math.Float64bits(wmn) ||
				math.Float64bits(gmx) != math.Float64bits(wmx) {
				t.Fatalf("minmax f64 dense n=%d: (%v,%v) want (%v,%v)", n, gmn, gmx, wmn, wmx)
			}
		}

		ints := make([]int64, n)
		for i := range ints {
			ints[i] = int64(rng.Uint64())
		}
		if n > 0 {
			gmn, gmx := minMaxInt64DenseAVX2(ints)
			wmn, wmx := minMaxInt64Dense(ints)
			if gmn != wmn || gmx != wmx {
				t.Fatalf("minmax i64 dense n=%d: (%d,%d) want (%d,%d)", n, gmn, gmx, wmn, wmx)
			}
		}
		for _, p := range []float64{0, 0.3, 1} {
			nulls := randNulls(rng, n, p)
			gmn, gmx, gany := minMaxInt64MaskedAVX2(ints, nulls)
			wmn, wmx, wany := minMaxInt64Masked(ints, nulls)
			if gmn != wmn || gmx != wmx || gany != wany {
				t.Fatalf("minmax i64 masked n=%d p=%v: (%d,%d,%v) want (%d,%d,%v)",
					n, p, gmn, gmx, gany, wmn, wmx, wany)
			}
		}
	}
}

func TestDiffHashKernels(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(404))
	for _, n := range randLens(rng) {
		ints := make([]int64, n)
		for i := range ints {
			ints[i] = int64(rng.Uint64())
		}
		floats := randFloats(rng, n)

		got, want := make([]uint64, n), make([]uint64, n)
		hashInt64AVX2(ints, got)
		hashInt64Portable(ints, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("hash i64 n=%d [%d]: %x want %x", n, i, got[i], want[i])
			}
		}
		hashFloat64AVX2(floats, got)
		hashFloat64Portable(floats, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("hash f64 n=%d [%d]: %x want %x", n, i, got[i], want[i])
			}
		}

		seed := make([]uint64, n)
		for i := range seed {
			seed[i] = rng.Uint64()
		}
		copy(got, seed)
		copy(want, seed)
		hashCombineInt64AVX2(got, ints)
		hashCombineInt64Portable(want, ints)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("combine i64 n=%d [%d]: %x want %x", n, i, got[i], want[i])
			}
		}
		copy(got, seed)
		copy(want, seed)
		hashCombineFloat64AVX2(got, floats)
		hashCombineFloat64Portable(want, floats)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("combine f64 n=%d [%d]: %x want %x", n, i, got[i], want[i])
			}
		}
	}
}

func TestDispatchInfoCoherent(t *testing.T) {
	info := DispatchInfo()
	if len(info) != len(kernelFamilies) {
		t.Fatalf("DispatchInfo reports %d families, want %d", len(info), len(kernelFamilies))
	}
	for _, d := range info {
		if d.Impl != "avx2" && d.Impl != "portable" {
			t.Fatalf("kernel %s: bad impl %q", d.Kernel, d.Impl)
		}
		if d.Impl == "avx2" && !AVX2Enabled() {
			t.Fatalf("kernel %s reports avx2 but dispatch is disabled", d.Kernel)
		}
	}
	if AVX2Enabled() && CPUFeatureLevel() != "avx2" {
		t.Fatal("CPUFeatureLevel disagrees with AVX2Enabled")
	}
	if !AVX2Enabled() && CPUFeatureLevel() != "baseline" {
		t.Fatal("CPUFeatureLevel disagrees with AVX2Enabled")
	}
}

func TestGodebugParsing(t *testing.T) {
	cases := []struct {
		in  string
		off bool
	}{
		{"", false},
		{"cpu.avx2=off", true},
		{"cpu.all=off", true},
		{"gctrace=1,cpu.avx2=off", true},
		{"cpu.avx2=off,cpu.avx2=on", false},
		{"cpu.avx2=on,cpu.avx2=off", true},
		{"cpu.all=off,cpu.avx2=on", false},
		{"cpu.sse42=off", false},
	}
	for _, c := range cases {
		if got := godebugDisablesAVX2(c.in); got != c.off {
			t.Errorf("godebugDisablesAVX2(%q) = %v want %v", c.in, got, c.off)
		}
	}
}
