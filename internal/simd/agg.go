package simd

import "math"

// Aggregation and grouping kernels for the batch-at-a-time consume path:
// instead of pushing every unpacked tuple through a chain of compiled
// closures, the vectorized aggregator evaluates each aggregate argument as
// a column vector and folds it here, column-at-a-time.
//
// Float folds are strictly sequential (no lane reassociation): the batch
// path must produce bit-identical sums to the tuple-at-a-time path, which
// accumulates in row order.

// SumFloat64 folds a float vector into the running accumulator acc,
// skipping NULL positions, and returns the new accumulator plus the
// non-null count. Folding into acc (rather than summing the batch and
// adding once) keeps the addition order identical to the tuple path across
// batch boundaries, so results stay bit-identical. nulls may be nil.
//
//dbvet:hotpath
func SumFloat64(acc float64, vals []float64, nulls []bool) (float64, int64) {
	if nulls == nil {
		return sumF64DenseFn(acc, vals), int64(len(vals))
	}
	return sumF64MaskedFn(acc, vals, nulls)
}

func sumFloat64Dense(acc float64, vals []float64) float64 {
	for _, v := range vals {
		acc += v
	}
	return canonNaN(acc)
}

func sumFloat64Masked(acc float64, vals []float64, nulls []bool) (float64, int64) {
	var cnt int64
	for i, v := range vals {
		if !nulls[i] {
			acc += v
			cnt++
		}
	}
	return canonNaN(acc), cnt
}

// canonNaN maps every NaN to the canonical quiet NaN. A sum that hits
// Inf + -Inf manufactures a NaN whose payload depends on the ADDSD operand
// order — which the compiler is free to pick per build for the portable
// loop — so both sum implementations canonicalize on exit to keep the
// asm/portable bit-identity contract independent of codegen.
func canonNaN(x float64) float64 {
	if x != x {
		return math.NaN()
	}
	return x
}

// CountNotNull counts the non-NULL positions. nulls may be nil.
//
//dbvet:hotpath
func CountNotNull(n int, nulls []bool) int64 {
	if nulls == nil {
		return int64(n)
	}
	var cnt int64
	for _, isNull := range nulls[:n] {
		if !isNull {
			cnt++
		}
	}
	return cnt
}

// MinMaxInt64 folds a vector into (min, max, any-non-null).
//
//dbvet:hotpath
func MinMaxInt64(vals []int64, nulls []bool) (mn, mx int64, any bool) {
	if nulls == nil {
		if len(vals) == 0 {
			return 0, 0, false
		}
		mn, mx = minMaxI64DenseFn(vals)
		return mn, mx, true
	}
	return minMaxI64MaskFn(vals, nulls)
}

// minMaxInt64Dense folds a non-empty vector. Integer min/max is
// associative, so the assembler version may fold lanes in any order and
// still match this sequential loop exactly.
func minMaxInt64Dense(vals []int64) (mn, mx int64) {
	mn, mx = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

func minMaxInt64Masked(vals []int64, nulls []bool) (mn, mx int64, any bool) {
	for i, v := range vals {
		if nulls[i] {
			continue
		}
		if !any {
			mn, mx, any = v, v, true
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx, any
}

// MinMaxFloat64 folds a vector into (min, max, any-non-null).
//
//dbvet:hotpath
func MinMaxFloat64(vals []float64, nulls []bool) (mn, mx float64, any bool) {
	if nulls == nil {
		if len(vals) == 0 {
			return 0, 0, false
		}
		mn, mx = minMaxF64DenseFn(vals)
		return mn, mx, true
	}
	return minMaxF64MaskFn(vals, nulls)
}

// minMaxFloat64Dense folds a non-empty vector sequentially. Unlike the
// integer fold, IEEE min/max is NOT reassociable bit-for-bit (NaN and
// ±0.0 ordering depend on fold order), so the assembler version keeps
// this exact element order — the speedup comes from branch-free
// MINSD/MAXSD and the removal of bounds checks, not from lanes.
func minMaxFloat64Dense(vals []float64) (mn, mx float64) {
	mn, mx = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

func minMaxFloat64Masked(vals []float64, nulls []bool) (mn, mx float64, any bool) {
	for i, v := range vals {
		if nulls[i] {
			continue
		}
		if !any {
			mn, mx, any = v, v, true
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx, any
}

// GroupCount bumps each row's group counter.
//
//dbvet:hotpath
func GroupCount(counts []int64, gids []uint32) {
	for _, g := range gids {
		counts[g]++
	}
}

// GroupCountNotNull bumps each non-NULL row's group counter.
//
//dbvet:hotpath
func GroupCountNotNull(counts []int64, gids []uint32, nulls []bool) {
	if nulls == nil {
		GroupCount(counts, gids)
		return
	}
	nulls = nulls[:len(gids)]
	for i, g := range gids {
		if !nulls[i] {
			counts[g]++
		}
	}
}

// GroupSumFloat64 scatter-adds a float vector into per-group accumulators,
// bumping the per-group non-null count. A group's NULL-ness is derivable
// from its count, so no seen flag is maintained — one store and one bounds
// check fewer per row on the grouped-aggregation hot path.
//
//dbvet:hotpath
func GroupSumFloat64(sums []float64, counts []int64, gids []uint32, vals []float64, nulls []bool) {
	vals = vals[:len(gids)]
	if nulls == nil {
		for i, g := range gids {
			sums[g] += vals[i]
			counts[g]++
		}
		return
	}
	nulls = nulls[:len(gids)]
	for i, g := range gids {
		if nulls[i] {
			continue
		}
		sums[g] += vals[i]
		counts[g]++
	}
}

// GroupMinMaxInt64 scatter-folds a vector into per-group min/max.
//
//dbvet:hotpath
func GroupMinMaxInt64(mins, maxs []int64, seen []bool, gids []uint32, vals []int64, nulls []bool) {
	vals = vals[:len(gids)]
	if nulls != nil {
		nulls = nulls[:len(gids)]
	}
	for i, g := range gids {
		if nulls != nil && nulls[i] {
			continue
		}
		v := vals[i]
		if !seen[g] {
			mins[g], maxs[g], seen[g] = v, v, true
			continue
		}
		if v < mins[g] {
			mins[g] = v
		}
		if v > maxs[g] {
			maxs[g] = v
		}
	}
}

// GroupMinMaxFloat64 scatter-folds a vector into per-group min/max.
//
//dbvet:hotpath
func GroupMinMaxFloat64(mins, maxs []float64, seen []bool, gids []uint32, vals []float64, nulls []bool) {
	vals = vals[:len(gids)]
	if nulls != nil {
		nulls = nulls[:len(gids)]
	}
	for i, g := range gids {
		if nulls != nil && nulls[i] {
			continue
		}
		v := vals[i]
		if !seen[g] {
			mins[g], maxs[g], seen[g] = v, v, true
			continue
		}
		if v < mins[g] {
			mins[g] = v
		}
		if v > maxs[g] {
			maxs[g] = v
		}
	}
}

// Mix64 is the splitmix64 finalizer: the shared scalar hash of the join
// hash table, its tag filter and the vectorized grouping/probing kernels.
// All of them must agree on it, so it lives here.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashInt64 hashes a batch of int64 keys into out (len(out) == len(vals)):
// the vectorized hash phase of batch hash-join probes and integer group-by
// key assignment.
//
//dbvet:hotpath
func HashInt64(vals []int64, out []uint64) {
	hashI64Fn(vals, out)
}

func hashInt64Portable(vals []int64, out []uint64) {
	for i, v := range vals {
		out[i] = Mix64(uint64(v))
	}
}

// HashFloat64 hashes a batch of float64 keys by bit pattern into out
// (len(out) == len(vals)): the vectorized hash phase of float group-by
// key assignment. math.Float64bits(v) and the raw little-endian load the
// assembler kernel performs are the same 8 bytes, so both dispatch legs
// agree.
//
//dbvet:hotpath
func HashFloat64(vals []float64, out []uint64) {
	hashF64Fn(vals, out)
}

func hashFloat64Portable(vals []float64, out []uint64) {
	for i, v := range vals {
		out[i] = Mix64(math.Float64bits(v))
	}
}

// HashCombineInt64 folds a batch of int64 key columns into the running
// group hashes: hs[i] = Mix64(hs[i] ^ Mix64(uint64(vals[i]))). This is
// the multi-column group-by hash chain of the vectorized aggregator; the
// formula must match the scalar per-row combination used for
// tuple-created groups.
//
//dbvet:hotpath
func HashCombineInt64(hs []uint64, vals []int64) {
	hashCombineI64Fn(hs, vals)
}

func hashCombineInt64Portable(hs []uint64, vals []int64) {
	for i, v := range vals {
		hs[i] = Mix64(hs[i] ^ Mix64(uint64(v)))
	}
}

// HashCombineFloat64 is HashCombineInt64 over float64 bit patterns.
//
//dbvet:hotpath
func HashCombineFloat64(hs []uint64, vals []float64) {
	hashCombineF64Fn(hs, vals)
}

func hashCombineFloat64Portable(hs []uint64, vals []float64) {
	for i, v := range vals {
		hs[i] = Mix64(hs[i] ^ Mix64(math.Float64bits(v)))
	}
}

// hashStrSeed is the FNV-64 offset basis, the seed of HashStr.
const hashStrSeed = 14695981039346656037

// HashStr hashes a string byte-wise (FNV-1 style) and finalizes with
// Mix64. It feeds the aggregator's group-key hashing only — it is NOT the
// join hash table's key hash (exec.hashBytes consumes 8-byte words with a
// rotate and produces different values for keys of 8+ bytes), so it must
// never be used to index join buckets.
func HashStr(s string) uint64 {
	var h uint64 = hashStrSeed
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return Mix64(h)
}
