package simd

// Aggregation and grouping kernels for the batch-at-a-time consume path:
// instead of pushing every unpacked tuple through a chain of compiled
// closures, the vectorized aggregator evaluates each aggregate argument as
// a column vector and folds it here, column-at-a-time.
//
// Float folds are strictly sequential (no lane reassociation): the batch
// path must produce bit-identical sums to the tuple-at-a-time path, which
// accumulates in row order.

// SumFloat64 folds a float vector into the running accumulator acc,
// skipping NULL positions, and returns the new accumulator plus the
// non-null count. Folding into acc (rather than summing the batch and
// adding once) keeps the addition order identical to the tuple path across
// batch boundaries, so results stay bit-identical. nulls may be nil.
//
//dbvet:hotpath
func SumFloat64(acc float64, vals []float64, nulls []bool) (float64, int64) {
	if nulls == nil {
		for _, v := range vals {
			acc += v
		}
		return acc, int64(len(vals))
	}
	var cnt int64
	for i, v := range vals {
		if !nulls[i] {
			acc += v
			cnt++
		}
	}
	return acc, cnt
}

// CountNotNull counts the non-NULL positions. nulls may be nil.
//
//dbvet:hotpath
func CountNotNull(n int, nulls []bool) int64 {
	if nulls == nil {
		return int64(n)
	}
	var cnt int64
	for _, isNull := range nulls[:n] {
		if !isNull {
			cnt++
		}
	}
	return cnt
}

// MinMaxInt64 folds a vector into (min, max, any-non-null).
//
//dbvet:hotpath
func MinMaxInt64(vals []int64, nulls []bool) (mn, mx int64, any bool) {
	for i, v := range vals {
		if nulls != nil && nulls[i] {
			continue
		}
		if !any {
			mn, mx, any = v, v, true
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx, any
}

// MinMaxFloat64 folds a vector into (min, max, any-non-null).
//
//dbvet:hotpath
func MinMaxFloat64(vals []float64, nulls []bool) (mn, mx float64, any bool) {
	for i, v := range vals {
		if nulls != nil && nulls[i] {
			continue
		}
		if !any {
			mn, mx, any = v, v, true
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx, any
}

// GroupCount bumps each row's group counter.
//
//dbvet:hotpath
func GroupCount(counts []int64, gids []uint32) {
	for _, g := range gids {
		counts[g]++
	}
}

// GroupCountNotNull bumps each non-NULL row's group counter.
//
//dbvet:hotpath
func GroupCountNotNull(counts []int64, gids []uint32, nulls []bool) {
	if nulls == nil {
		GroupCount(counts, gids)
		return
	}
	for i, g := range gids {
		if !nulls[i] {
			counts[g]++
		}
	}
}

// GroupSumFloat64 scatter-adds a float vector into per-group accumulators,
// bumping the per-group non-null count and seen flag.
//
//dbvet:hotpath
func GroupSumFloat64(sums []float64, counts []int64, seen []bool, gids []uint32, vals []float64, nulls []bool) {
	if nulls == nil {
		for i, g := range gids {
			sums[g] += vals[i]
			counts[g]++
			seen[g] = true
		}
		return
	}
	for i, g := range gids {
		if nulls[i] {
			continue
		}
		sums[g] += vals[i]
		counts[g]++
		seen[g] = true
	}
}

// GroupMinMaxInt64 scatter-folds a vector into per-group min/max.
//
//dbvet:hotpath
func GroupMinMaxInt64(mins, maxs []int64, seen []bool, gids []uint32, vals []int64, nulls []bool) {
	for i, g := range gids {
		if nulls != nil && nulls[i] {
			continue
		}
		v := vals[i]
		if !seen[g] {
			mins[g], maxs[g], seen[g] = v, v, true
			continue
		}
		if v < mins[g] {
			mins[g] = v
		}
		if v > maxs[g] {
			maxs[g] = v
		}
	}
}

// GroupMinMaxFloat64 scatter-folds a vector into per-group min/max.
//
//dbvet:hotpath
func GroupMinMaxFloat64(mins, maxs []float64, seen []bool, gids []uint32, vals []float64, nulls []bool) {
	for i, g := range gids {
		if nulls != nil && nulls[i] {
			continue
		}
		v := vals[i]
		if !seen[g] {
			mins[g], maxs[g], seen[g] = v, v, true
			continue
		}
		if v < mins[g] {
			mins[g] = v
		}
		if v > maxs[g] {
			maxs[g] = v
		}
	}
}

// Mix64 is the splitmix64 finalizer: the shared scalar hash of the join
// hash table, its tag filter and the vectorized grouping/probing kernels.
// All of them must agree on it, so it lives here.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashInt64 hashes a batch of int64 keys into out (len(out) == len(vals)):
// the vectorized hash phase of batch hash-join probes and integer group-by
// key assignment.
//
//dbvet:hotpath
func HashInt64(vals []int64, out []uint64) {
	for i, v := range vals {
		out[i] = Mix64(uint64(v))
	}
}

// hashStrSeed is the FNV-64 offset basis, the seed of HashStr.
const hashStrSeed = 14695981039346656037

// HashStr hashes a string byte-wise (FNV-1 style) and finalizes with
// Mix64. It feeds the aggregator's group-key hashing only — it is NOT the
// join hash table's key hash (exec.hashBytes consumes 8-byte words with a
// rotate and produces different values for keys of 8+ bytes), so it must
// never be used to index join buckets.
func HashStr(s string) uint64 {
	var h uint64 = hashStrSeed
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return Mix64(h)
}
