// Package simd implements the paper's SIMD predicate-evaluation algorithms
// (§4.2, Appendix C) as SIMD-within-a-register (SWAR) kernels on uint64
// words, since Go offers no vector intrinsics.
//
// The structure follows the paper exactly:
//
//   - "find initial matches": a vectorized comparison produces a per-lane
//     bitmask (the movemask), which indexes a precomputed 256-entry positions
//     table; all eight candidate positions are written unconditionally and
//     the write cursor advances by the popcount, making the kernel
//     selectivity-insensitive (Figure 12a).
//   - "reduce matches": values are gathered from the positions of an existing
//     match vector, compared, and the match vector is compacted in place
//     using the same table as a shuffle control mask (Figure 7b).
//
// Lane widths mirror the compressed Data Block domains: 1-, 2-, 4- and
// 8-byte little-endian unsigned integers stored in a flat byte slice
// (byte-addressable storage, §3.3). Eight 8-bit lanes or four 16-bit lanes
// are compared per 64-bit word using carry-isolated container arithmetic;
// 32- and 64-bit lanes degrade gracefully toward scalar work, reproducing
// the paper's observation that SIMD gains shrink with lane width (Figure 8).
package simd

import "encoding/binary"

// Op is a SARGable comparison operator evaluated by the kernels. Operands
// are unsigned in the compressed domain; the block layer translates query
// constants (and signed/ordering concerns) before invoking a kernel.
type Op uint8

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// OpBetween is inclusive on both ends: c1 <= x <= c2.
	OpBetween
)

func (op Op) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "between"
	default:
		return "Op(?)"
	}
}

// posEntry is one row of the precomputed positions table (Appendix C): the
// lane indexes of the set bits of an 8-bit movemask, plus their count. The
// paper packs the count into the low bits of each position; we keep it as a
// separate field and store ready-to-add uint32 lane offsets.
type posEntry struct {
	pos [8]uint32
	n   uint32
}

// posTable maps an 8-bit movemask to the positions of its set bits. 256
// entries x 36 bytes ≈ 9 KB, matching the paper's 8 KB L1-resident table.
var posTable [256]posEntry

func init() {
	for m := 0; m < 256; m++ {
		e := &posTable[m]
		k := 0
		for b := 0; b < 8; b++ {
			if m>>uint(b)&1 == 1 {
				e.pos[k] = uint32(b)
				k++
			}
		}
		e.n = uint32(k)
	}
}

// SWAR constants for byte lanes held in 16-bit containers and 16-bit lanes
// held in 32-bit containers. Splitting lanes into even/odd container sets
// isolates carries, so per-container add/sub never contaminates a neighbour.
const (
	even8  = 0x00FF00FF00FF00FF // byte lanes 0,2,4,6 in 16-bit containers
	one16  = 0x0001000100010001
	bit8s  = 0x0100010001000100
	even16 = 0x0000FFFF0000FFFF // 16-bit lanes 0,2 in 32-bit containers
	one32  = 0x0000000100000001
	bit16s = 0x0001000000010000

	// collapse4 gathers the four container flag bits of a half-word
	// comparison (at bit positions 0,16,32,48 after shifting) into bits
	// 48..51 of the product.
	collapse4 = 0x0001000200040008
)

// spread4 maps a 4-bit mask (bit j) to an 8-bit mask (bit 2j), used to
// interleave the even- and odd-lane half masks into one movemask.
var spread4 = [16]uint32{
	0x00, 0x01, 0x04, 0x05, 0x10, 0x11, 0x14, 0x15,
	0x40, 0x41, 0x44, 0x45, 0x50, 0x51, 0x54, 0x55,
}

func splat16(v uint64) uint64 { return v * one16 }
func splat32(v uint64) uint64 { return v * one32 }

// half8 collapses the per-container flag bits (bit 8 of each 16-bit
// container) of t into a 4-bit mask, bit j = container j.
func half8(t uint64) uint32 {
	u := (t >> 8) & one16
	return uint32((u * collapse4) >> 48)
}

// half16 collapses the per-container flag bits (bit 16 of each 32-bit
// container) of t into a 2-bit mask.
func half16(t uint64) uint32 {
	u := (t >> 16) & one32
	return uint32(u|u>>31) & 3
}

// b2u converts a bool to 0/1; the compiler lowers this to a SETcc, keeping
// scalar fallbacks branch-free.
func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// EnsureCap returns out with capacity for at least slack more elements,
// growing geometrically if needed. Kernels call it once per input batch so
// the unconditional 8-wide stores never write past the backing array.
func EnsureCap(out []uint32, slack int) []uint32 {
	if cap(out)-len(out) >= slack {
		return out
	}
	newCap := 2 * cap(out)
	if newCap < len(out)+slack {
		newCap = len(out) + slack
	}
	grown := make([]uint32, len(out), newCap)
	copy(grown, out)
	return grown
}

// emit appends the set-bit positions of mask, offset by base, to out. out
// must have at least 8 spare capacity. All eight slots are written
// unconditionally (the paper's _mm256_storeu + advance-by-count idiom); the
// length advances only by the match count.
func emit(out []uint32, mask uint32, base uint32) []uint32 {
	e := &posTable[mask&0xFF]
	n := len(out)
	buf := out[n : n+8]
	buf[0] = base + e.pos[0]
	buf[1] = base + e.pos[1]
	buf[2] = base + e.pos[2]
	buf[3] = base + e.pos[3]
	buf[4] = base + e.pos[4]
	buf[5] = base + e.pos[5]
	buf[6] = base + e.pos[6]
	buf[7] = base + e.pos[7]
	return out[: n+int(e.n) : cap(out)]
}

// load64 reads one little-endian 64-bit word at byte offset i.
func load64(data []byte, i int) uint64 { return binary.LittleEndian.Uint64(data[i:]) }

// ReadUint decodes the idx-th element of a flat little-endian vector with
// the given byte width. This is the byte-addressable point access of §3.4:
// O(1), no unpacking of neighbours.
func ReadUint(data []byte, idx, width int) uint64 {
	switch width {
	case 1:
		return uint64(data[idx])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[idx*2:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[idx*4:]))
	default:
		return binary.LittleEndian.Uint64(data[idx*8:])
	}
}

// WriteUint encodes v as the idx-th element of a flat little-endian vector.
func WriteUint(data []byte, idx, width int, v uint64) {
	switch width {
	case 1:
		data[idx] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(data[idx*2:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(data[idx*4:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(data[idx*8:], v)
	}
}
