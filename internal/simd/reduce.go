package simd

import (
	"encoding/binary"
	"sync/atomic"
)

// Reduce shrinks an existing match vector m in place, keeping only positions
// whose element in data (width bytes, little-endian) satisfies op against
// c1/c2. It returns the shortened slice (aliasing m).
//
// This is the paper's "reduce matches" (Figure 7b): values are gathered from
// the match positions, compared, and the match vector is compacted using the
// positions table as a shuffle control mask. Performance depends on the
// selectivity of the preceding predicate through the gather's memory access
// pattern (Figure 9), not on the selectivity of this predicate.
//
//dbvet:hotpath
func Reduce(data []byte, width int, op Op, c1, c2 uint64, m []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeU(op, c1, c2, maxFor(width))
	if empty {
		return m[:0]
	}
	if all {
		return m
	}
	if ne {
		switch width {
		case 1:
			return reduceNeW1Fn(data, uint8(lo), m)
		case 2:
			return reduceNeW2Fn(data, uint16(lo), m)
		case 4:
			return reduceNeW4Fn(data, uint32(lo), m)
		default:
			return reduceNeW8Fn(data, lo, m)
		}
	}
	switch width {
	case 1:
		return reduceBetweenW1Fn(data, uint8(lo), uint8(hi), m)
	case 2:
		return reduceBetweenW2Fn(data, uint16(lo), uint16(hi), m)
	case 4:
		return reduceBetweenW4Fn(data, uint32(lo), uint32(hi), m)
	default:
		return reduceBetweenW8Fn(data, lo, hi, m)
	}
}

// compact8 applies the positions-table shuffle: it moves the surviving
// entries of m[r:r+8] (per mask) to m[w:], returning the new write cursor.
// All eight slots are written unconditionally; don't-care values beyond the
// match count are overwritten by later groups or cut by the final truncation.
func compact8(m []uint32, w, r int, mask uint32) int {
	e := &posTable[mask&0xFF]
	m[w+0] = m[r+int(e.pos[0])]
	m[w+1] = m[r+int(e.pos[1])]
	m[w+2] = m[r+int(e.pos[2])]
	m[w+3] = m[r+int(e.pos[3])]
	m[w+4] = m[r+int(e.pos[4])]
	m[w+5] = m[r+int(e.pos[5])]
	m[w+6] = m[r+int(e.pos[6])]
	m[w+7] = m[r+int(e.pos[7])]
	return w + int(e.n)
}

func reduceBetweenW1(data []byte, lo, hi uint8, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			v := data[m[r+j]]
			mask |= b2u(v >= lo && v <= hi) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		v := data[m[r]]
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW1(data []byte, c uint8, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			mask |= b2u(data[m[r+j]] != c) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(data[m[r]] != c))
	}
	return m[:w]
}

func reduceBetweenW2(data []byte, lo, hi uint16, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			v := binary.LittleEndian.Uint16(data[m[r+j]*2:])
			mask |= b2u(v >= lo && v <= hi) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		v := binary.LittleEndian.Uint16(data[m[r]*2:])
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW2(data []byte, c uint16, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			mask |= b2u(binary.LittleEndian.Uint16(data[m[r+j]*2:]) != c) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(binary.LittleEndian.Uint16(data[m[r]*2:]) != c))
	}
	return m[:w]
}

func reduceBetweenW4(data []byte, lo, hi uint32, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			v := binary.LittleEndian.Uint32(data[m[r+j]*4:])
			mask |= b2u(v >= lo && v <= hi) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		v := binary.LittleEndian.Uint32(data[m[r]*4:])
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW4(data []byte, c uint32, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			mask |= b2u(binary.LittleEndian.Uint32(data[m[r+j]*4:]) != c) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(binary.LittleEndian.Uint32(data[m[r]*4:]) != c))
	}
	return m[:w]
}

func reduceBetweenW8(data []byte, lo, hi uint64, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			v := binary.LittleEndian.Uint64(data[m[r+j]*8:])
			mask |= b2u(v >= lo && v <= hi) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		v := binary.LittleEndian.Uint64(data[m[r]*8:])
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

func reduceNeW8(data []byte, c uint64, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			mask |= b2u(binary.LittleEndian.Uint64(data[m[r+j]*8:]) != c) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(binary.LittleEndian.Uint64(data[m[r]*8:]) != c))
	}
	return m[:w]
}

// ReduceInt64 is the reduce-matches kernel for uncompressed signed columns.
//
//dbvet:hotpath
func ReduceInt64(col []int64, op Op, c1, c2 int64, m []uint32) []uint32 {
	lo, hi, ne, empty, all := normalizeI64(op, c1, c2)
	if empty {
		return m[:0]
	}
	if all {
		return m
	}
	if ne {
		return reduceNeI64Fn(col, lo, m)
	}
	return reduceBetweenI64Fn(col, lo, hi, m)
}

func reduceNeI64(col []int64, c int64, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			mask |= b2u(col[m[r+j]] != c) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		m[w] = m[r]
		w += int(b2u(col[m[r]] != c))
	}
	return m[:w]
}

func reduceBetweenI64(col []int64, lo, hi int64, m []uint32) []uint32 {
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			v := col[m[r+j]]
			mask |= b2u(v >= lo && v <= hi) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		v := col[m[r]]
		m[w] = m[r]
		w += int(b2u(v >= lo && v <= hi))
	}
	return m[:w]
}

// ReduceFloat64 is the scalar reduce fallback for doubles.
//
//dbvet:hotpath
func ReduceFloat64(col []float64, op Op, c1, c2 float64, m []uint32) []uint32 {
	w := 0
	for _, p := range m {
		v := col[p]
		var ok bool
		switch op {
		case OpEq:
			ok = v == c1
		case OpNe:
			ok = v != c1
		case OpLt:
			ok = v < c1
		case OpLe:
			ok = v <= c1
		case OpGt:
			ok = v > c1
		case OpGe:
			ok = v >= c1
		default:
			ok = v >= c1 && v <= c2
		}
		if ok {
			m[w] = p
			w++
		}
	}
	return m[:w]
}

// ReduceBitmap keeps only match positions whose bitmap bit equals wantSet.
// Used to apply validity (NULL) and delete bitmaps to a match vector.
//
//dbvet:hotpath
func ReduceBitmap(bm []uint64, wantSet bool, m []uint32) []uint32 {
	return reduceBitmapFn(bm, wantSet, m)
}

func reduceBitmapPortable(bm []uint64, wantSet bool, m []uint32) []uint32 {
	want := uint64(0)
	if wantSet {
		want = 1
	}
	r, w := 0, 0
	for ; r+8 <= len(m); r += 8 {
		var mask uint32
		for j := 0; j < 8; j++ {
			p := m[r+j]
			bit := bm[p>>6] >> (p & 63) & 1
			mask |= b2u(bit == want) << uint(j)
		}
		w = compact8(m, w, r, mask)
	}
	for ; r < len(m); r++ {
		p := m[r]
		m[w] = p
		w += int(b2u(bm[p>>6]>>(p&63)&1 == want))
	}
	return m[:w]
}

// BitmapGet reports bit i of bm.
//
//dbvet:hotpath
func BitmapGet(bm []uint64, i uint32) bool { return bm[i>>6]>>(i&63)&1 == 1 }

// BitmapSet sets bit i of bm.
//
//dbvet:hotpath
func BitmapSet(bm []uint64, i uint32) { bm[i>>6] |= 1 << (i & 63) }

// BitmapGetAtomic reports bit i of bm with an atomic word load, so the
// bitmap may be read concurrently with BitmapSetAtomic writers. On amd64
// and arm64 the load compiles to a plain MOV; the atomicity only buys the
// memory-model guarantee (and keeps the race detector quiet).
//
//dbvet:hotpath
func BitmapGetAtomic(bm []uint64, i uint32) bool {
	return atomic.LoadUint64(&bm[i>>6])>>(i&63)&1 == 1
}

// BitmapSetAtomic sets bit i of bm with a CAS on its word, so concurrent
// BitmapGetAtomic readers never observe a torn word. Bits are only ever
// set, never cleared, which is what makes lock-free snapshot consumers
// sound: a bit observed set stays set.
//
//dbvet:hotpath
func BitmapSetAtomic(bm []uint64, i uint32) {
	word := &bm[i>>6]
	mask := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 || atomic.CompareAndSwapUint64(word, old, old|mask) {
			return
		}
	}
}

// BitmapWords returns the number of uint64 words needed for n bits.
func BitmapWords(n int) int { return (n + 63) / 64 }
