package tpch

import (
	"fmt"
	"time"

	"datablocks/internal/core"
	"datablocks/internal/exec"
	"datablocks/internal/types"
)

// SupportedQueries lists the implemented TPC-H subset, chosen to cover the
// paper's Table 2 extremes (Q1: nearly all tuples qualify; Q6: few qualify)
// plus join, semi-join, multi-way-join, CASE-aggregation and complex-OR
// shapes.
var SupportedQueries = []int{1, 3, 4, 5, 6, 12, 14, 19}

// Query builds and runs the physical plan of the given TPC-H query.
func (db *DB) Query(q int, opt exec.Options) (*exec.Result, error) {
	plan, err := db.Plan(q)
	if err != nil {
		return nil, err
	}
	return exec.Run(plan, opt)
}

// Plan returns the physical plan of the given TPC-H query.
func (db *DB) Plan(q int) (exec.Node, error) {
	switch q {
	case 1:
		return db.q1(), nil
	case 3:
		return db.q3(), nil
	case 4:
		return db.q4(), nil
	case 5:
		return db.q5(), nil
	case 6:
		return db.q6(), nil
	case 12:
		return db.q12(), nil
	case 14:
		return db.q14(), nil
	case 19:
		return db.q19(), nil
	default:
		return nil, fmt.Errorf("tpch: query %d not implemented (supported: %v)", q, SupportedQueries)
	}
}

func date(y int, m time.Month, d int) types.Value { return types.DateValue(y, m, d) }

// dollars converts a scaled-cents integer column expression to dollars.
func dollars(e exec.Expr) exec.Expr { return exec.Div(e, exec.CInt(100)) }

// frac converts a hundredths column (discount, tax) to a fraction.
func frac(e exec.Expr) exec.Expr { return exec.Div(e, exec.CInt(100)) }

func (db *DB) li(name string) int  { return db.Lineitem.Schema().MustColumn(name) }
func (db *DB) ord(name string) int { return db.Orders.Schema().MustColumn(name) }

// q1 — pricing summary report: scan-dominated, nearly all tuples qualify
// (the vectorized-scan worst case, §4.1).
func (db *DB) q1() exec.Node {
	cols := []int{
		db.li("l_quantity"), db.li("l_extendedprice"), db.li("l_discount"),
		db.li("l_tax"), db.li("l_returnflag"), db.li("l_linestatus"), db.li("l_shipdate"),
	}
	const (
		qty = iota
		price
		disc
		tax
		rf
		ls
	)
	discPrice := exec.Mul(dollars(exec.Col(price)), exec.Sub(exec.CFloat(1), frac(exec.Col(disc))))
	charge := exec.Mul(discPrice, exec.Add(exec.CFloat(1), frac(exec.Col(tax))))
	return &exec.OrderByNode{
		Child: &exec.AggNode{
			Child: &exec.ScanNode{
				Rel:  db.Lineitem,
				Cols: cols,
				Preds: []core.Predicate{
					{Col: db.li("l_shipdate"), Op: types.Le, Lo: date(1998, time.September, 2)},
				},
			},
			GroupBy: []int{rf, ls},
			Aggs: []exec.AggSpec{
				{Func: exec.AggSum, Arg: exec.Col(qty)},
				{Func: exec.AggSum, Arg: dollars(exec.Col(price))},
				{Func: exec.AggSum, Arg: discPrice},
				{Func: exec.AggSum, Arg: charge},
				{Func: exec.AggAvg, Arg: exec.Col(qty)},
				{Func: exec.AggAvg, Arg: dollars(exec.Col(price))},
				{Func: exec.AggAvg, Arg: frac(exec.Col(disc))},
				{Func: exec.AggCount},
			},
		},
		Keys: []exec.OrderKey{{Col: 0}, {Col: 1}},
	}
}

// q3 — shipping priority: customer ⋈ orders ⋈ lineitem with top-10.
func (db *DB) q3() exec.Node {
	cust := &exec.ScanNode{
		Rel:  db.Customer,
		Cols: []int{db.Customer.Schema().MustColumn("c_custkey"), db.Customer.Schema().MustColumn("c_mktsegment")},
		Preds: []core.Predicate{
			{Col: db.Customer.Schema().MustColumn("c_mktsegment"), Op: types.Eq, Lo: types.StringValue("BUILDING")},
		},
	}
	ordersScan := &exec.ScanNode{
		Rel: db.Orders,
		Cols: []int{
			db.ord("o_orderkey"), db.ord("o_custkey"), db.ord("o_orderdate"), db.ord("o_shippriority"),
		},
		Preds: []core.Predicate{
			{Col: db.ord("o_orderdate"), Op: types.Lt, Lo: date(1995, time.March, 15)},
		},
	}
	// orders ⋈ customer keyed on custkey; output: o_* ++ c_*.
	oc := &exec.JoinNode{
		Build: cust, Probe: ordersScan,
		BuildKeys: []int{0}, ProbeKeys: []int{1},
		Kind: exec.InnerJoin,
	}
	liScan := &exec.ScanNode{
		Rel:  db.Lineitem,
		Cols: []int{db.li("l_orderkey"), db.li("l_extendedprice"), db.li("l_discount"), db.li("l_shipdate")},
		Preds: []core.Predicate{
			{Col: db.li("l_shipdate"), Op: types.Gt, Lo: date(1995, time.March, 15)},
		},
	}
	// lineitem ⋈ (orders ⋈ customer): probe cols [okey price disc ship] ++
	// build cols [o_orderkey o_custkey o_orderdate o_shippriority c_custkey c_mktsegment]
	j := &exec.JoinNode{
		Build: oc, Probe: liScan,
		BuildKeys: []int{0}, ProbeKeys: []int{0},
		Kind: exec.InnerJoin,
	}
	revenue := exec.Mul(dollars(exec.Col(1)), exec.Sub(exec.CFloat(1), frac(exec.Col(2))))
	return &exec.OrderByNode{
		Child: &exec.AggNode{
			Child:   j,
			GroupBy: []int{4, 6, 7}, // l_orderkey(from build o_orderkey), o_orderdate, o_shippriority
			Aggs:    []exec.AggSpec{{Func: exec.AggSum, Arg: revenue}},
		},
		Keys:  []exec.OrderKey{{Col: 3, Desc: true}, {Col: 1}},
		Limit: 10,
	}
}

// q4 — order priority checking: semi join against late lineitems.
func (db *DB) q4() exec.Node {
	late := &exec.ScanNode{
		Rel:    db.Lineitem,
		Cols:   []int{db.li("l_orderkey"), db.li("l_commitdate"), db.li("l_receiptdate")},
		Filter: exec.Cmp(types.Lt, exec.Col(1), exec.Col(2)),
	}
	ordersScan := &exec.ScanNode{
		Rel:  db.Orders,
		Cols: []int{db.ord("o_orderkey"), db.ord("o_orderpriority"), db.ord("o_orderdate")},
		Preds: []core.Predicate{
			{Col: db.ord("o_orderdate"), Op: types.Between, Lo: date(1993, time.July, 1), Hi: date(1993, time.September, 30)},
		},
	}
	semi := &exec.JoinNode{
		Build: late, Probe: ordersScan,
		BuildKeys: []int{0}, ProbeKeys: []int{0},
		Kind: exec.SemiJoin,
	}
	return &exec.OrderByNode{
		Child: &exec.AggNode{
			Child:   semi,
			GroupBy: []int{1},
			Aggs:    []exec.AggSpec{{Func: exec.AggCount}},
		},
		Keys: []exec.OrderKey{{Col: 0}},
	}
}

// q5 — local supplier volume: six-way join with a residual nation match.
func (db *DB) q5() exec.Node {
	region := &exec.ScanNode{
		Rel:  db.Region,
		Cols: []int{db.Region.Schema().MustColumn("r_regionkey"), db.Region.Schema().MustColumn("r_name")},
		Preds: []core.Predicate{
			{Col: db.Region.Schema().MustColumn("r_name"), Op: types.Eq, Lo: types.StringValue("ASIA")},
		},
	}
	nation := &exec.ScanNode{
		Rel: db.Nation,
		Cols: []int{
			db.Nation.Schema().MustColumn("n_nationkey"),
			db.Nation.Schema().MustColumn("n_name"),
			db.Nation.Schema().MustColumn("n_regionkey"),
		},
	}
	// nation ⋈ region: [n_nationkey n_name n_regionkey r_regionkey r_name]
	nr := &exec.JoinNode{Build: region, Probe: nation, BuildKeys: []int{0}, ProbeKeys: []int{2}, Kind: exec.InnerJoin}
	supplier := &exec.ScanNode{
		Rel:  db.Supplier,
		Cols: []int{db.Supplier.Schema().MustColumn("s_suppkey"), db.Supplier.Schema().MustColumn("s_nationkey")},
	}
	// supplier ⋈ (nation ⋈ region): [s_suppkey s_nationkey n_nationkey n_name ...]
	snr := &exec.JoinNode{Build: nr, Probe: supplier, BuildKeys: []int{0}, ProbeKeys: []int{1}, Kind: exec.InnerJoin}

	cust := &exec.ScanNode{
		Rel:  db.Customer,
		Cols: []int{db.Customer.Schema().MustColumn("c_custkey"), db.Customer.Schema().MustColumn("c_nationkey")},
	}
	ordersScan := &exec.ScanNode{
		Rel:  db.Orders,
		Cols: []int{db.ord("o_orderkey"), db.ord("o_custkey"), db.ord("o_orderdate")},
		Preds: []core.Predicate{
			{Col: db.ord("o_orderdate"), Op: types.Between, Lo: date(1994, time.January, 1), Hi: date(1994, time.December, 31)},
		},
	}
	// orders ⋈ customer: [o_orderkey o_custkey o_orderdate c_custkey c_nationkey]
	oc := &exec.JoinNode{Build: cust, Probe: ordersScan, BuildKeys: []int{0}, ProbeKeys: []int{1}, Kind: exec.InnerJoin}

	liScan := &exec.ScanNode{
		Rel:  db.Lineitem,
		Cols: []int{db.li("l_orderkey"), db.li("l_suppkey"), db.li("l_extendedprice"), db.li("l_discount")},
	}
	// lineitem ⋈ oc on orderkey:
	// [l_orderkey l_suppkey l_price l_disc | o_orderkey o_custkey o_orderdate c_custkey c_nationkey]
	jo := &exec.JoinNode{Build: oc, Probe: liScan, BuildKeys: []int{0}, ProbeKeys: []int{0}, Kind: exec.InnerJoin}
	// ⋈ snr on suppkey:
	// ++ [s_suppkey s_nationkey n_nationkey n_name n_regionkey r_regionkey r_name]
	js := &exec.JoinNode{Build: snr, Probe: jo, BuildKeys: []int{0}, ProbeKeys: []int{1}, Kind: exec.InnerJoin}
	// residual: customer and supplier share the nation.
	filtered := &exec.FilterNode{
		Child: js,
		Cond:  exec.Cmp(types.Eq, exec.Col(8), exec.Col(10)), // c_nationkey == s_nationkey
	}
	revenue := exec.Mul(dollars(exec.Col(2)), exec.Sub(exec.CFloat(1), frac(exec.Col(3))))
	return &exec.OrderByNode{
		Child: &exec.AggNode{
			Child:   filtered,
			GroupBy: []int{12}, // n_name
			Aggs:    []exec.AggSpec{{Func: exec.AggSum, Arg: revenue}},
		},
		Keys: []exec.OrderKey{{Col: 1, Desc: true}},
	}
}

// q6 — forecasting revenue change: the paper's highly selective
// scan-dominated query, the PSMA/SARG showcase.
func (db *DB) q6() exec.Node {
	revenue := exec.Mul(dollars(exec.Col(1)), frac(exec.Col(2)))
	return &exec.AggNode{
		Child: &exec.ScanNode{
			Rel:  db.Lineitem,
			Cols: []int{db.li("l_shipdate"), db.li("l_extendedprice"), db.li("l_discount"), db.li("l_quantity")},
			Preds: []core.Predicate{
				{Col: db.li("l_shipdate"), Op: types.Between, Lo: date(1994, time.January, 1), Hi: date(1994, time.December, 31)},
				{Col: db.li("l_discount"), Op: types.Between, Lo: types.IntValue(5), Hi: types.IntValue(7)},
				{Col: db.li("l_quantity"), Op: types.Lt, Lo: types.IntValue(24)},
			},
		},
		Aggs: []exec.AggSpec{{Func: exec.AggSum, Arg: revenue}},
	}
}

// q12 — shipping modes and order priority: join plus CASE aggregation.
func (db *DB) q12() exec.Node {
	ordersScan := &exec.ScanNode{
		Rel:  db.Orders,
		Cols: []int{db.ord("o_orderkey"), db.ord("o_orderpriority")},
	}
	liScan := &exec.ScanNode{
		Rel: db.Lineitem,
		Cols: []int{
			db.li("l_orderkey"), db.li("l_shipmode"), db.li("l_commitdate"),
			db.li("l_receiptdate"), db.li("l_shipdate"),
		},
		Preds: []core.Predicate{
			// MAIL..SHIP narrows the dictionary range; the exact IN list is
			// the residual filter below.
			{Col: db.li("l_shipmode"), Op: types.Between, Lo: types.StringValue("MAIL"), Hi: types.StringValue("SHIP")},
			{Col: db.li("l_receiptdate"), Op: types.Between, Lo: date(1994, time.January, 1), Hi: date(1994, time.December, 31)},
		},
		Filter: exec.And(
			exec.Or(
				exec.Cmp(types.Eq, exec.Col(1), exec.CStr("MAIL")),
				exec.Cmp(types.Eq, exec.Col(1), exec.CStr("SHIP")),
			),
			exec.And(
				exec.Cmp(types.Lt, exec.Col(2), exec.Col(3)), // commit < receipt
				exec.Cmp(types.Lt, exec.Col(4), exec.Col(2)), // ship < commit
			),
		),
	}
	j := &exec.JoinNode{Build: ordersScan, Probe: liScan, BuildKeys: []int{0}, ProbeKeys: []int{0}, Kind: exec.InnerJoin}
	isUrgent := exec.Or(
		exec.Cmp(types.Eq, exec.Col(6), exec.CStr("1-URGENT")),
		exec.Cmp(types.Eq, exec.Col(6), exec.CStr("2-HIGH")),
	)
	return &exec.OrderByNode{
		Child: &exec.AggNode{
			Child:   j,
			GroupBy: []int{1}, // l_shipmode
			Aggs: []exec.AggSpec{
				{Func: exec.AggSum, Arg: exec.If{Cond: isUrgent, Then: exec.CInt(1), Else: exec.CInt(0)}},
				{Func: exec.AggSum, Arg: exec.If{Cond: isUrgent, Then: exec.CInt(0), Else: exec.CInt(1)}},
			},
		},
		Keys: []exec.OrderKey{{Col: 0}},
	}
}

// q14 — promotion effect: lineitem ⋈ part with a LIKE-prefix CASE.
func (db *DB) q14() exec.Node {
	part := &exec.ScanNode{
		Rel:  db.Part,
		Cols: []int{db.Part.Schema().MustColumn("p_partkey"), db.Part.Schema().MustColumn("p_type")},
	}
	liScan := &exec.ScanNode{
		Rel:  db.Lineitem,
		Cols: []int{db.li("l_partkey"), db.li("l_extendedprice"), db.li("l_discount"), db.li("l_shipdate")},
		Preds: []core.Predicate{
			{Col: db.li("l_shipdate"), Op: types.Between, Lo: date(1995, time.September, 1), Hi: date(1995, time.September, 30)},
		},
	}
	j := &exec.JoinNode{Build: part, Probe: liScan, BuildKeys: []int{0}, ProbeKeys: []int{0}, Kind: exec.InnerJoin}
	revenue := exec.Mul(dollars(exec.Col(1)), exec.Sub(exec.CFloat(1), frac(exec.Col(2))))
	isPromo := exec.Cmp(types.Prefix, exec.Col(5), exec.CStr("PROMO"))
	return &exec.AggNode{
		Child: j,
		Aggs: []exec.AggSpec{
			{Func: exec.AggSum, Arg: exec.If{Cond: isPromo, Then: revenue, Else: exec.CFloat(0)}},
			{Func: exec.AggSum, Arg: revenue},
		},
	}
}

// q19 — discounted revenue: three OR-ed conjunct groups over part and
// lineitem attributes.
func (db *DB) q19() exec.Node {
	part := &exec.ScanNode{
		Rel: db.Part,
		Cols: []int{
			db.Part.Schema().MustColumn("p_partkey"), db.Part.Schema().MustColumn("p_brand"),
			db.Part.Schema().MustColumn("p_container"), db.Part.Schema().MustColumn("p_size"),
		},
	}
	liScan := &exec.ScanNode{
		Rel: db.Lineitem,
		Cols: []int{
			db.li("l_partkey"), db.li("l_quantity"), db.li("l_extendedprice"),
			db.li("l_discount"), db.li("l_shipinstruct"), db.li("l_shipmode"),
		},
		Preds: []core.Predicate{
			{Col: db.li("l_shipinstruct"), Op: types.Eq, Lo: types.StringValue("DELIVER IN PERSON")},
			{Col: db.li("l_shipmode"), Op: types.Between, Lo: types.StringValue("AIR"), Hi: types.StringValue("AIR REG")},
		},
	}
	// join output: [l_partkey qty price disc instr mode | p_partkey brand container size]
	j := &exec.JoinNode{Build: part, Probe: liScan, BuildKeys: []int{0}, ProbeKeys: []int{0}, Kind: exec.InnerJoin}
	const (
		qty   = 1
		brand = 7
		cont  = 8
		size  = 9
	)
	group := func(brandV string, containers []string, qLo, qHi, sHi int64) exec.Expr {
		var contMatch exec.Expr
		for _, c := range containers {
			m := exec.Cmp(types.Eq, exec.Col(cont), exec.CStr(c))
			if contMatch == nil {
				contMatch = m
			} else {
				contMatch = exec.Or(contMatch, m)
			}
		}
		return exec.And(
			exec.Cmp(types.Eq, exec.Col(brand), exec.CStr(brandV)),
			exec.And(
				contMatch,
				exec.And(
					exec.BetweenE(exec.Col(qty), exec.CInt(qLo), exec.CInt(qHi)),
					exec.BetweenE(exec.Col(size), exec.CInt(1), exec.CInt(sHi)),
				),
			),
		)
	}
	cond := exec.Or(
		group("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
		exec.Or(
			group("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
			group("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15),
		),
	)
	revenue := exec.Mul(dollars(exec.Col(2)), exec.Sub(exec.CFloat(1), frac(exec.Col(3))))
	return &exec.AggNode{
		Child: &exec.FilterNode{Child: j, Cond: cond},
		Aggs:  []exec.AggSpec{{Func: exec.AggSum, Arg: revenue}},
	}
}
