package tpch

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"datablocks/internal/exec"
	"datablocks/internal/types"
)

// genTest builds a small database (SF 0.002 ≈ 3000 orders / ~12000
// lineitems) and freezes everything except the hot tails.
func genTest(t *testing.T, freeze bool) *DB {
	t.Helper()
	db, err := Generate(0.002, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if freeze {
		if err := db.FreezeAll(false, false); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestGenerateShapes(t *testing.T) {
	db := genTest(t, false)
	if db.Orders.NumRows() != 3000 {
		t.Fatalf("orders = %d", db.Orders.NumRows())
	}
	n := db.Lineitem.NumRows()
	if n < 3000 || n > 21000 {
		t.Fatalf("lineitem = %d", n)
	}
	if db.Nation.NumRows() != 25 || db.Region.NumRows() != 5 {
		t.Fatalf("nation/region = %d/%d", db.Nation.NumRows(), db.Region.NumRows())
	}
	// Determinism: regeneration produces identical data.
	db2, err := Generate(0.002, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Lineitem.NumRows() != n {
		t.Fatalf("regeneration differs: %d vs %d", db2.Lineitem.NumRows(), n)
	}
	for _, i := range []int{0, 100, n - 1} {
		tid := tidFor(i, 1<<12)
		a, _ := db.Lineitem.Get(tid)
		b, _ := db2.Lineitem.Get(tid)
		for c := range a {
			if !a[c].Equal(b[c]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, a[c], b[c])
			}
		}
	}
	// Foreign keys stay in range.
	custRows := int64(db.Customer.NumRows())
	for i := 0; i < 100; i++ {
		row, ok := db.Orders.Get(tidFor(i, 1<<12))
		if !ok {
			t.Fatal("missing order")
		}
		ck := row[1].Int()
		if ck < 1 || ck > custRows {
			t.Fatalf("o_custkey %d out of range", ck)
		}
	}
}

func tidFor(i, chunk int) (tid struct {
	Chunk uint32
	Row   uint32
}) {
	tid.Chunk = uint32(i / chunk)
	tid.Row = uint32(i % chunk)
	return
}

func TestDatesAndDomains(t *testing.T) {
	db := genTest(t, false)
	lo, hi := types.DateToDays(1992, time.January, 1), types.DateToDays(1998, time.December, 31)
	for _, ch := range db.Lineitem.Chunks() {
		h := ch.Hot()
		ship := h.Ints(db.li("l_shipdate"))
		commit := h.Ints(db.li("l_commitdate"))
		receipt := h.Ints(db.li("l_receiptdate"))
		disc := h.Ints(db.li("l_discount"))
		qty := h.Ints(db.li("l_quantity"))
		for i := range ship {
			if ship[i] < lo || ship[i] > hi || commit[i] < lo || receipt[i] < ship[i] {
				t.Fatalf("date invariants violated at %d", i)
			}
			if disc[i] < 0 || disc[i] > 10 || qty[i] < 1 || qty[i] > 50 {
				t.Fatalf("domain invariants violated at %d", i)
			}
		}
	}
}

// TestQueriesAgreeAcrossModesAndStorage: every supported query returns the
// same result in all four scan modes, on hot data and on frozen Data
// Blocks, serial and parallel.
func TestQueriesAgreeAcrossModesAndStorage(t *testing.T) {
	hot := genTest(t, false)
	cold := genTest(t, true)
	modes := []exec.ScanMode{exec.ModeJIT, exec.ModeVectorized, exec.ModeVectorizedSARG, exec.ModeVectorizedSARGPSMA}
	for _, q := range SupportedQueries {
		var ref string
		var refRows int
		for _, db := range []*DB{hot, cold} {
			for _, mode := range modes {
				res, err := db.Query(q, exec.Options{Mode: mode})
				if err != nil {
					t.Fatalf("Q%d mode %v: %v", q, mode, err)
				}
				got := canonical(res)
				if ref == "" {
					ref = got
					refRows = res.NumRows()
					if refRows == 0 {
						t.Fatalf("Q%d: empty result", q)
					}
					continue
				}
				if got != ref {
					t.Fatalf("Q%d mode %v (frozen=%v) differs:\n%s\nvs\n%s", q, mode, db == cold, got, ref)
				}
			}
		}
		// Parallel run agrees too (floats rounded by canonical()).
		res, err := cold.Query(q, exec.Options{Mode: exec.ModeVectorizedSARGPSMA, Parallelism: 2})
		if err != nil {
			t.Fatalf("Q%d parallel: %v", q, err)
		}
		if got := canonical(res); got != ref {
			t.Fatalf("Q%d parallel differs", q)
		}
	}
}

// canonical renders a result with rounded floats, sorted rows.
func canonical(r *exec.Result) string {
	var rows []string
	for i := 0; i < r.NumRows(); i++ {
		var sb strings.Builder
		for c := 0; c < r.NumCols(); c++ {
			v := r.Value(c, i)
			if c > 0 {
				sb.WriteString("|")
			}
			if !v.IsNull() && v.Kind() == types.Float64 {
				// round to 2 decimals to absorb summation-order noise
				f := v.Float()
				sb.WriteString(strings.TrimRight(strings.TrimRight(
					formatF(f), "0"), "."))
				continue
			}
			sb.WriteString(v.String())
		}
		rows = append(rows, sb.String())
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func formatF(f float64) string {
	// fixed 2-decimal formatting without fmt to keep rounding stable
	neg := f < 0
	if neg {
		f = -f
	}
	scaled := int64(f*100 + 0.5)
	s := ""
	if neg {
		s = "-"
	}
	return s + itoa(scaled/100) + "." + pad2(scaled%100)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func pad2(v int64) string {
	if v < 10 {
		return "0" + itoa(v)
	}
	return itoa(v)
}

func TestQ1Semantics(t *testing.T) {
	db := genTest(t, true)
	res, err := db.Query(1, exec.Options{Mode: exec.ModeVectorizedSARGPSMA})
	if err != nil {
		t.Fatal(err)
	}
	// Q1 groups by (returnflag, linestatus): A/F, N/F, N/O, R/F.
	if res.NumRows() != 4 {
		t.Fatalf("groups = %d, want 4", res.NumRows())
	}
	// count_order sums to the number of lineitems passing the date filter.
	var total int64
	for i := 0; i < res.NumRows(); i++ {
		total += res.Cols[9].Ints[i]
	}
	if total == 0 || total > int64(db.Lineitem.NumRows()) {
		t.Fatalf("count sum = %d", total)
	}
	// avg_disc must lie in [0, 0.10].
	for i := 0; i < res.NumRows(); i++ {
		if d := res.Cols[8].Floats[i]; d < 0 || d > 0.10 {
			t.Fatalf("avg_disc = %g", d)
		}
	}
}

func TestQ6AgainstNaive(t *testing.T) {
	db := genTest(t, true)
	res, err := db.Query(6, exec.Options{Mode: exec.ModeVectorizedSARGPSMA})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	lo, hi := types.DateToDays(1994, time.January, 1), types.DateToDays(1994, time.December, 31)
	for _, ch := range db.Lineitem.Chunks() {
		blk := ch.Block()
		for row := 0; row < blk.Rows(); row++ {
			ship := blk.Int(db.li("l_shipdate"), row)
			disc := blk.Int(db.li("l_discount"), row)
			qty := blk.Int(db.li("l_quantity"), row)
			if ship >= lo && ship <= hi && disc >= 5 && disc <= 7 && qty < 24 {
				want += float64(blk.Int(db.li("l_extendedprice"), row)) / 100 * float64(disc) / 100
			}
		}
	}
	got := res.Cols[0].Floats[0]
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Q6 revenue = %g, want %g", got, want)
	}
}

func TestUnsupportedQuery(t *testing.T) {
	db := genTest(t, false)
	if _, err := db.Query(2, exec.Options{}); err == nil {
		t.Fatal("expected error for unsupported query")
	}
}

func TestFreezeAllSorted(t *testing.T) {
	db := genTest(t, false)
	if err := db.FreezeAll(true, false); err != nil {
		t.Fatal(err)
	}
	shipCol := db.li("l_shipdate")
	for _, ch := range db.Lineitem.Chunks() {
		blk := ch.Block()
		prev := int64(-1 << 62)
		for row := 0; row < blk.Rows(); row++ {
			d := blk.Int(shipCol, row)
			if d < prev {
				t.Fatal("lineitem block not sorted by l_shipdate")
			}
			prev = d
		}
	}
	// Queries still correct on sorted blocks.
	res, err := db.Query(6, exec.Options{Mode: exec.ModeVectorizedSARGPSMA})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatal("Q6 failed on sorted blocks")
	}
}

// requireBitIdentical compares two results cell for cell, including row
// order and float bit patterns. Serial executions are deterministic, so the
// batch-at-a-time consume path must reproduce the tuple-at-a-time result
// exactly — same groups, same order, same summation order, same bits.
func requireBitIdentical(t *testing.T, name string, a, b *exec.Result) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for c := 0; c < a.NumCols(); c++ {
		ca, cb := &a.Cols[c], &b.Cols[c]
		if ca.Kind != cb.Kind {
			t.Fatalf("%s: col %d kind %v vs %v", name, c, ca.Kind, cb.Kind)
		}
		for i := 0; i < a.NumRows(); i++ {
			if ca.Nulls[i] != cb.Nulls[i] {
				t.Fatalf("%s: cell (%d,%d) null %v vs %v", name, i, c, ca.Nulls[i], cb.Nulls[i])
			}
			if ca.Nulls[i] {
				continue
			}
			switch ca.Kind {
			case types.Int64:
				if ca.Ints[i] != cb.Ints[i] {
					t.Fatalf("%s: cell (%d,%d) %d vs %d", name, i, c, ca.Ints[i], cb.Ints[i])
				}
			case types.Float64:
				if math.Float64bits(ca.Floats[i]) != math.Float64bits(cb.Floats[i]) {
					t.Fatalf("%s: cell (%d,%d) %v vs %v (bits differ)", name, i, c, ca.Floats[i], cb.Floats[i])
				}
			default:
				if ca.Strs[i] != cb.Strs[i] {
					t.Fatalf("%s: cell (%d,%d) %q vs %q", name, i, c, ca.Strs[i], cb.Strs[i])
				}
			}
		}
	}
}

// TestBatchConsumeMatchesTupleExactly: on every supported query, every
// vectorized scan mode and both storage temperatures, the batch-at-a-time
// consume path (aggregation, join probe, materialization) produces a
// bit-identical result to the tuple-at-a-time fallback, and the parallel
// batch execution agrees up to float summation order.
func TestBatchConsumeMatchesTupleExactly(t *testing.T) {
	hot := genTest(t, false)
	cold := genTest(t, true)
	modes := []exec.ScanMode{exec.ModeVectorized, exec.ModeVectorizedSARG, exec.ModeVectorizedSARGPSMA}
	for _, q := range SupportedQueries {
		for di, db := range []*DB{hot, cold} {
			for _, mode := range modes {
				name := fmt.Sprintf("Q%d frozen=%v %v", q, di == 1, mode)
				batch, err := db.Query(q, exec.Options{Mode: mode})
				if err != nil {
					t.Fatalf("%s (batch): %v", name, err)
				}
				tuple, err := db.Query(q, exec.Options{Mode: mode, TupleAtATime: true})
				if err != nil {
					t.Fatalf("%s (tuple): %v", name, err)
				}
				if batch.NumRows() == 0 {
					t.Fatalf("%s: empty result", name)
				}
				requireBitIdentical(t, name, tuple, batch)
				// Small vectors exercise multi-batch group/probe reuse.
				small, err := db.Query(q, exec.Options{Mode: mode, VectorSize: 512})
				if err != nil {
					t.Fatalf("%s (vec512): %v", name, err)
				}
				requireBitIdentical(t, name+" vec512", tuple, small)
			}
		}
		// Parallel batch execution returns the same result up to float
		// summation order (canonical rounds floats).
		ref, err := cold.Query(q, exec.Options{Mode: exec.ModeVectorizedSARG})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4} {
			res, err := cold.Query(q, exec.Options{Mode: exec.ModeVectorizedSARG, Parallelism: par})
			if err != nil {
				t.Fatalf("Q%d parallel=%d: %v", q, par, err)
			}
			if canonical(res) != canonical(ref) {
				t.Fatalf("Q%d parallel=%d differs from serial", q, par)
			}
		}
	}
}
