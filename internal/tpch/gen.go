// Package tpch is a deterministic, in-process TPC-H data generator and a
// set of hand-coded physical plans for a representative query subset
// (Q1, Q3, Q4, Q5, Q6, Q12, Q14, Q19), used by the Table 1/2/4, Figure 10,
// Figure 11 and Figure 13 reproductions.
//
// The generator follows dbgen's distributions for every column the queries
// and the compression study touch: dates, quantities, prices (scaled-cent
// decimals, as HyPer stores them), discounts/taxes in hundredths, the small
// categorical domains (ship modes, priorities, brands, types), and
// low-entropy comment text. Rows are emitted in primary-key order, matching
// the paper's "insertion order of the generated CSV files" (§3.2), which
// makes the non-key attributes uniformly distributed across blocks — the
// reason SMAs skip nothing on default TPC-H.
package tpch

import (
	"fmt"
	"time"

	"datablocks/internal/core"
	"datablocks/internal/storage"
	"datablocks/internal/types"
	"datablocks/internal/xrand"
)

// DB holds the generated TPC-H relations.
type DB struct {
	SF       float64
	Lineitem *storage.Relation
	Orders   *storage.Relation
	Customer *storage.Relation
	Part     *storage.Relation
	Supplier *storage.Relation
	Nation   *storage.Relation
	Region   *storage.Relation
}

// Relations returns all base relations with their names.
func (db *DB) Relations() map[string]*storage.Relation {
	return map[string]*storage.Relation{
		"lineitem": db.Lineitem,
		"orders":   db.Orders,
		"customer": db.Customer,
		"part":     db.Part,
		"supplier": db.Supplier,
		"nation":   db.Nation,
		"region":   db.Region,
	}
}

var (
	shipModes     = []string{"AIR", "AIR REG", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	shipInstructs = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	orderPrios    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	mktSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	commentWords  = []string{"carefully", "quickly", "furiously", "deposits", "requests", "packages", "ideas", "foxes", "pending", "final", "express", "regular", "bold", "silent", "theodolites", "accounts", "platelets", "instructions", "sleep", "haggle", "nag", "among", "across", "above"}
	nationNames   = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	nationRegions = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	regionNames   = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	partNameWords = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory"}
)

var (
	startDate = types.DateToDays(1992, time.January, 1)
	endDate   = types.DateToDays(1998, time.August, 2)
	// currentDate splits return flags and line statuses in dbgen.
	cutoffDate = types.DateToDays(1995, time.June, 17)
)

func comment(r *xrand.Rand, words int) string {
	s := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			s += " "
		}
		s += r.Pick(commentWords)
	}
	return s
}

// Sizes returns the row counts for a scale factor.
func Sizes(sf float64) (orders, lineAvg, customers, parts, suppliers int) {
	orders = int(sf * 1_500_000)
	if orders < 10 {
		orders = 10
	}
	customers = int(sf * 150_000)
	if customers < 5 {
		customers = 5
	}
	parts = int(sf * 200_000)
	if parts < 10 {
		parts = 10
	}
	suppliers = int(sf * 10_000)
	if suppliers < 3 {
		suppliers = 3
	}
	return orders, 4, customers, parts, suppliers
}

// Generate builds the database at the given scale factor. chunkRows bounds
// rows per storage chunk (0 = the 2^16 Data Block default).
func Generate(sf float64, chunkRows int) (*DB, error) {
	db := &DB{SF: sf}
	numOrders, _, numCust, numParts, numSupp := Sizes(sf)
	r := xrand.New(0xDB1C5)

	if err := db.genRegionNation(); err != nil {
		return nil, err
	}
	if err := db.genSupplier(r, numSupp, chunkRows); err != nil {
		return nil, err
	}
	if err := db.genCustomer(r, numCust, chunkRows); err != nil {
		return nil, err
	}
	if err := db.genPart(r, numParts, chunkRows); err != nil {
		return nil, err
	}
	if err := db.genOrdersAndLineitem(r, numOrders, numCust, numParts, numSupp, chunkRows); err != nil {
		return nil, err
	}
	return db, nil
}

func col(name string, k types.Kind) types.Column { return types.Column{Name: name, Kind: k} }

func (db *DB) genRegionNation() error {
	db.Region = storage.NewRelation(types.NewSchema(
		col("r_regionkey", types.Int64), col("r_name", types.String), col("r_comment", types.String),
	), 0)
	for i, name := range regionNames {
		if _, err := db.Region.Insert(types.Row{
			types.IntValue(int64(i)), types.StringValue(name), types.StringValue("region " + name),
		}); err != nil {
			return err
		}
	}
	db.Nation = storage.NewRelation(types.NewSchema(
		col("n_nationkey", types.Int64), col("n_name", types.String),
		col("n_regionkey", types.Int64), col("n_comment", types.String),
	), 0)
	for i, name := range nationNames {
		if _, err := db.Nation.Insert(types.Row{
			types.IntValue(int64(i)), types.StringValue(name),
			types.IntValue(nationRegions[i]), types.StringValue("nation " + name),
		}); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) genSupplier(r *xrand.Rand, n, chunkRows int) error {
	db.Supplier = storage.NewRelation(types.NewSchema(
		col("s_suppkey", types.Int64), col("s_name", types.String), col("s_address", types.String),
		col("s_nationkey", types.Int64), col("s_phone", types.String),
		col("s_acctbal", types.Int64), col("s_comment", types.String),
	), chunkRows)
	cols := newCols(db.Supplier, n)
	for i := 0; i < n; i++ {
		key := int64(i + 1)
		cols[0].Ints[i] = key
		cols[1].Strs[i] = fmt.Sprintf("Supplier#%09d", key)
		cols[2].Strs[i] = comment(r, 2)
		cols[3].Ints[i] = int64(r.Intn(25))
		cols[4].Strs[i] = phone(r, cols[3].Ints[i])
		cols[5].Ints[i] = r.Range(-99999, 999999) // cents
		cols[6].Strs[i] = comment(r, 5)
	}
	return db.Supplier.BulkAppend(cols, n)
}

func (db *DB) genCustomer(r *xrand.Rand, n, chunkRows int) error {
	db.Customer = storage.NewRelation(types.NewSchema(
		col("c_custkey", types.Int64), col("c_name", types.String), col("c_address", types.String),
		col("c_nationkey", types.Int64), col("c_phone", types.String),
		col("c_acctbal", types.Int64), col("c_mktsegment", types.String), col("c_comment", types.String),
	), chunkRows)
	cols := newCols(db.Customer, n)
	for i := 0; i < n; i++ {
		key := int64(i + 1)
		cols[0].Ints[i] = key
		cols[1].Strs[i] = fmt.Sprintf("Customer#%09d", key)
		cols[2].Strs[i] = comment(r, 2)
		cols[3].Ints[i] = int64(r.Intn(25))
		cols[4].Strs[i] = phone(r, cols[3].Ints[i])
		cols[5].Ints[i] = r.Range(-99999, 999999)
		cols[6].Strs[i] = r.Pick(mktSegments)
		cols[7].Strs[i] = comment(r, 6)
	}
	return db.Customer.BulkAppend(cols, n)
}

func (db *DB) genPart(r *xrand.Rand, n, chunkRows int) error {
	db.Part = storage.NewRelation(types.NewSchema(
		col("p_partkey", types.Int64), col("p_name", types.String), col("p_mfgr", types.String),
		col("p_brand", types.String), col("p_type", types.String), col("p_size", types.Int64),
		col("p_container", types.String), col("p_retailprice", types.Int64), col("p_comment", types.String),
	), chunkRows)
	cols := newCols(db.Part, n)
	for i := 0; i < n; i++ {
		key := int64(i + 1)
		m, nn := r.Intn(5)+1, r.Intn(5)+1
		cols[0].Ints[i] = key
		cols[1].Strs[i] = r.Pick(partNameWords) + " " + r.Pick(partNameWords) + " " + r.Pick(partNameWords)
		cols[2].Strs[i] = fmt.Sprintf("Manufacturer#%d", m)
		cols[3].Strs[i] = fmt.Sprintf("Brand#%d%d", m, nn)
		cols[4].Strs[i] = r.Pick(typeSyllable1) + " " + r.Pick(typeSyllable2) + " " + r.Pick(typeSyllable3)
		cols[5].Ints[i] = int64(r.Intn(50) + 1)
		cols[6].Strs[i] = r.Pick(containerSyl1) + " " + r.Pick(containerSyl2)
		cols[7].Ints[i] = retailPrice(key)
		cols[8].Strs[i] = comment(r, 3)
	}
	return db.Part.BulkAppend(cols, n)
}

// retailPrice follows dbgen's formula, in cents.
func retailPrice(partkey int64) int64 {
	return 90000 + (partkey/10)%20001 + 100*(partkey%1000)
}

func phone(r *xrand.Rand, nationkey int64) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nationkey, r.Intn(900)+100, r.Intn(900)+100, r.Intn(9000)+1000)
}

func (db *DB) genOrdersAndLineitem(r *xrand.Rand, numOrders, numCust, numParts, numSupp, chunkRows int) error {
	db.Orders = storage.NewRelation(types.NewSchema(
		col("o_orderkey", types.Int64), col("o_custkey", types.Int64), col("o_orderstatus", types.String),
		col("o_totalprice", types.Int64), col("o_orderdate", types.Int64), col("o_orderpriority", types.String),
		col("o_clerk", types.String), col("o_shippriority", types.Int64), col("o_comment", types.String),
	), chunkRows)
	db.Lineitem = storage.NewRelation(types.NewSchema(
		col("l_orderkey", types.Int64), col("l_partkey", types.Int64), col("l_suppkey", types.Int64),
		col("l_linenumber", types.Int64), col("l_quantity", types.Int64), col("l_extendedprice", types.Int64),
		col("l_discount", types.Int64), col("l_tax", types.Int64), col("l_returnflag", types.String),
		col("l_linestatus", types.String), col("l_shipdate", types.Int64), col("l_commitdate", types.Int64),
		col("l_receiptdate", types.Int64), col("l_shipinstruct", types.String), col("l_shipmode", types.String),
		col("l_comment", types.String),
	), chunkRows)

	oCols := newCols(db.Orders, numOrders)
	const batch = 1 << 15
	lCols := newCols(db.Lineitem, batch)
	lCount := 0
	flush := func() error {
		if lCount == 0 {
			return nil
		}
		err := db.Lineitem.BulkAppend(truncCols(lCols, lCount), lCount)
		lCount = 0
		return err
	}
	for oi := 0; oi < numOrders; oi++ {
		okey := int64(oi + 1)
		odate := r.Range(startDate, endDate-151)
		nLines := r.Intn(7) + 1
		total := int64(0)
		anyOpen, allFinished := false, true
		for ln := 0; ln < nLines; ln++ {
			if lCount == batch {
				if err := flush(); err != nil {
					return err
				}
			}
			i := lCount
			qty := r.Range(1, 50)
			pkey := r.Range(1, int64(numParts))
			price := qty * retailPrice(pkey) / 100
			ship := odate + r.Range(1, 121)
			commit := odate + r.Range(30, 90)
			receipt := ship + r.Range(1, 30)
			lCols[0].Ints[i] = okey
			lCols[1].Ints[i] = pkey
			lCols[2].Ints[i] = r.Range(1, int64(numSupp))
			lCols[3].Ints[i] = int64(ln + 1)
			lCols[4].Ints[i] = qty
			lCols[5].Ints[i] = price
			lCols[6].Ints[i] = r.Range(0, 10) // hundredths
			lCols[7].Ints[i] = r.Range(0, 8)
			if receipt <= cutoffDate {
				if r.Intn(2) == 0 {
					lCols[8].Strs[i] = "R"
				} else {
					lCols[8].Strs[i] = "A"
				}
			} else {
				lCols[8].Strs[i] = "N"
			}
			if ship > cutoffDate {
				lCols[9].Strs[i] = "O"
				anyOpen = true
				allFinished = false
			} else {
				lCols[9].Strs[i] = "F"
			}
			lCols[10].Ints[i] = ship
			lCols[11].Ints[i] = commit
			lCols[12].Ints[i] = receipt
			lCols[13].Strs[i] = r.Pick(shipInstructs)
			lCols[14].Strs[i] = r.Pick(shipModes)
			lCols[15].Strs[i] = comment(r, 4)
			total += price
			lCount++
		}
		oCols[0].Ints[oi] = okey
		oCols[1].Ints[oi] = r.Range(1, int64(numCust))
		switch {
		case allFinished:
			oCols[2].Strs[oi] = "F"
		case anyOpen:
			oCols[2].Strs[oi] = "O"
		default:
			oCols[2].Strs[oi] = "P"
		}
		oCols[3].Ints[oi] = total
		oCols[4].Ints[oi] = odate
		oCols[5].Strs[oi] = r.Pick(orderPrios)
		oCols[6].Strs[oi] = fmt.Sprintf("Clerk#%09d", r.Intn(1000)+1)
		oCols[7].Ints[oi] = 0
		oCols[8].Strs[oi] = comment(r, 5)
	}
	if err := flush(); err != nil {
		return err
	}
	return db.Orders.BulkAppend(oCols, numOrders)
}

// newCols allocates column buffers matching a relation's schema.
func newCols(rel *storage.Relation, n int) []core.ColumnData {
	cols := make([]core.ColumnData, rel.Schema().NumColumns())
	for i, c := range rel.Schema().Columns {
		cols[i].Kind = c.Kind
		switch c.Kind {
		case types.Int64:
			cols[i].Ints = make([]int64, n)
		case types.Float64:
			cols[i].Floats = make([]float64, n)
		default:
			cols[i].Strs = make([]string, n)
		}
	}
	return cols
}

func truncCols(cols []core.ColumnData, n int) []core.ColumnData {
	out := make([]core.ColumnData, len(cols))
	for i, c := range cols {
		out[i] = c
		if c.Ints != nil {
			out[i].Ints = c.Ints[:n]
		}
		if c.Floats != nil {
			out[i].Floats = c.Floats[:n]
		}
		if c.Strs != nil {
			out[i].Strs = c.Strs[:n]
		}
	}
	return out
}

// FreezeAll freezes every relation completely (no hot tail), optionally
// sorting lineitem blocks by l_shipdate (the Figure 11 configuration).
func (db *DB) FreezeAll(sortLineitemByShipdate, noPSMA bool) error {
	for name, rel := range db.Relations() {
		opts := core.FreezeOptions{SortBy: -1, NoPSMA: noPSMA}
		if name == "lineitem" && sortLineitemByShipdate {
			opts.SortBy = rel.Schema().MustColumn("l_shipdate")
		}
		if err := rel.FreezeAll(opts, false); err != nil {
			return fmt.Errorf("freeze %s: %w", name, err)
		}
	}
	return nil
}
