package datablocks

import (
	"fmt"
	"log"
	"os"
	"testing"

	"datablocks/internal/exec"
)

// ExampleOpenPath shows the durable lifecycle: create a database in a
// directory, load and freeze data, close — then reopen the same directory
// in a "new process" and query the recovered table.
func ExampleOpenPath() {
	dir, err := os.MkdirTemp("", "datablocks-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First lifetime: create, load, close. Close freezes the hot tail and
	// writes the catalog and manifest, making dir a complete image.
	db, err := OpenPath(dir)
	if err != nil {
		log.Fatal(err)
	}
	orders, err := db.CreateTable("orders", []Column{
		{Name: "id", Kind: Int64},
		{Name: "total", Kind: Float64},
	}, WithPrimaryKey("id"))
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err = orders.Insert(Row{Int(int64(i)), Float(float64(i) * 10)}); err != nil {
			log.Fatal(err)
		}
	}
	if err = db.Close(); err != nil {
		log.Fatal(err)
	}

	// Second lifetime: reopen recovers the table set from the catalog,
	// restores frozen chunks lazily and rebuilds the primary-key index.
	db2, err := OpenPath(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	recovered := db2.Table("orders")
	fmt.Println("tables:", db2.Tables())
	fmt.Println("rows:", recovered.NumRows())
	row, ok := recovered.Lookup(2)
	fmt.Println("lookup 2:", ok, row[1].Float())
	// Output:
	// tables: [orders]
	// rows: 3
	// lookup 2: true 20
}

// ExampleWithRecover shows table-level durability without a catalog: the
// same directory recovers the table as long as the caller re-supplies the
// schema.
func ExampleWithRecover() {
	dir, err := os.MkdirTemp("", "datablocks-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	open := func() (*DB, *Table) {
		db := Open()
		kv, err := db.CreateTable("kv", []Column{
			{Name: "k", Kind: Int64},
			{Name: "v", Kind: String},
		}, WithPrimaryKey("k"), WithBlockStore(dir), WithRecover())
		if err != nil {
			log.Fatal(err)
		}
		return db, kv
	}
	db, kv := open()
	if _, err := kv.Insert(Row{Int(7), Str("seven")}); err != nil {
		log.Fatal(err)
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	_, kv2 := open()
	row, ok := kv2.Lookup(7)
	fmt.Println(ok, row[1].Str())
	// Output:
	// true seven
}

func accountsTable(t *testing.T, n int) (*DB, *Table) {
	t.Helper()
	db := Open()
	tbl, err := db.CreateTable("accounts", []Column{
		{Name: "id", Kind: Int64},
		{Name: "balance", Kind: Int64},
		{Name: "owner", Kind: String},
		{Name: "rate", Kind: Float64},
	}, WithPrimaryKey("id"), WithChunkRows(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := tbl.Insert(Row{
			Int(int64(i)), Int(int64(i % 1000)),
			Str(fmt.Sprintf("owner-%03d", i%200)), Float(float64(i%7) / 100),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, tbl
}

func TestCreateTableValidation(t *testing.T) {
	db := Open()
	if _, err := db.CreateTable("t", []Column{{Name: "a", Kind: Int64}}, WithPrimaryKey("missing")); err == nil {
		t.Fatal("missing PK column accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Kind: String}}, WithPrimaryKey("a")); err == nil {
		t.Fatal("string PK accepted")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Kind: Int64}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Kind: Int64}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestCRUDAcrossFreeze(t *testing.T) {
	_, tbl := accountsTable(t, 10000)
	row, ok := tbl.Lookup(1234)
	if !ok || row[1].Int() != 234 {
		t.Fatalf("lookup before freeze: %v %v", row, ok)
	}
	if err := tbl.Freeze(); err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.FrozenChunks == 0 {
		t.Fatal("nothing frozen")
	}
	// Point lookups hit frozen Data Blocks transparently.
	row, ok = tbl.Lookup(1234)
	if !ok || row[1].Int() != 234 || row[2].Str() != "owner-034" {
		t.Fatalf("lookup after freeze: %v %v", row, ok)
	}
	// Update a frozen tuple: moves to hot region.
	if err := tbl.Update(1234, Row{Int(1234), Int(999999), Str("updated"), Float(0.5)}); err != nil {
		t.Fatal(err)
	}
	row, ok = tbl.Lookup(1234)
	if !ok || row[1].Int() != 999999 {
		t.Fatalf("lookup after update: %v", row)
	}
	// Delete.
	if ok, derr := tbl.Delete(777); derr != nil || !ok {
		t.Fatalf("delete failed: %v %v", ok, derr)
	}
	if _, ok := tbl.Lookup(777); ok {
		t.Fatal("deleted key visible")
	}
	if ok, _ := tbl.Delete(777); ok {
		t.Fatal("double delete")
	}
	if tbl.NumRows() != 9999 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestScanAndModes(t *testing.T) {
	_, tbl := accountsTable(t, 20000)
	if err := tbl.Freeze(); err != nil {
		t.Fatal(err)
	}
	preds := []Pred{
		{Col: "balance", Op: Between, Lo: Int(100), Hi: Int(199)},
		{Col: "owner", Op: Prefix, Lo: Str("owner-1")},
	}
	var refRows int
	for _, mode := range []ScanMode{ModeJIT, ModeVectorized, ModeVectorizedSARG, ModeVectorizedSARGPSMA} {
		res, err := tbl.Scan([]string{"id", "balance", "owner"}, preds, QueryOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if refRows == 0 {
			refRows = res.NumRows()
			if refRows == 0 {
				t.Fatal("empty scan result")
			}
			continue
		}
		if res.NumRows() != refRows {
			t.Fatalf("mode %v: %d rows, want %d", mode, res.NumRows(), refRows)
		}
	}
	if _, err := tbl.Scan([]string{"nope"}, nil, QueryOptions{}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := tbl.Scan([]string{"id"}, []Pred{{Col: "nope", Op: Eq, Lo: Int(1)}}, QueryOptions{}); err == nil {
		t.Fatal("unknown predicate column accepted")
	}
}

func TestLookupScanEqualsIndexedLookup(t *testing.T) {
	_, tbl := accountsTable(t, 5000)
	if err := tbl.FreezeAll(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []int64{0, 42, 4999} {
		want, ok := tbl.Lookup(key)
		if !ok {
			t.Fatalf("indexed lookup %d failed", key)
		}
		got, ok, err := tbl.LookupScan("id", key, ModeVectorizedSARGPSMA)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("scan lookup %d failed", key)
		}
		for c := range want {
			if !want[c].Equal(got[c]) {
				t.Fatalf("key %d col %d: %v vs %v", key, c, want[c], got[c])
			}
		}
	}
	if _, ok, err := tbl.LookupScan("id", 99999, ModeVectorizedSARG); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("found missing key")
	}
	// A broken scan is an error, not a silent miss.
	if _, _, err := tbl.LookupScan("no_such_col", 1, ModeVectorizedSARG); err == nil {
		t.Fatal("scan error swallowed as a miss")
	}
}

func TestFreezeSortedRebuildIndex(t *testing.T) {
	_, tbl := accountsTable(t, 8000)
	if err := tbl.FreezeSorted("balance"); err != nil {
		t.Fatal(err)
	}
	// Index still resolves every key after the sort-induced TID reshuffle.
	for _, key := range []int64{0, 1, 500, 7999} {
		row, ok := tbl.Lookup(key)
		if !ok || row[0].Int() != key {
			t.Fatalf("lookup %d after sorted freeze: %v %v", key, row, ok)
		}
	}
}

func TestPlanComposition(t *testing.T) {
	_, tbl := accountsTable(t, 6000)
	if err := tbl.Freeze(); err != nil {
		t.Fatal(err)
	}
	scan, err := tbl.ScanPlan([]string{"balance", "rate"}, []Pred{
		{Col: "balance", Op: Lt, Lo: Int(500)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &exec.AggNode{
		Child: scan,
		Aggs: []exec.AggSpec{
			{Func: exec.AggCount},
			{Func: exec.AggSum, Arg: MulE(Col(0), Col(1))},
		},
	}
	res, err := Query(plan, QueryOptions{Mode: ModeVectorizedSARGPSMA})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Cols[0].Ints[0] == 0 {
		t.Fatalf("unexpected result: %s", res)
	}
	// Compare with naive count: balances are i % 1000 < 500 → half.
	if got := res.Cols[0].Ints[0]; got != 3000 {
		t.Fatalf("count = %d, want 3000", got)
	}
}

func TestStatsCompression(t *testing.T) {
	_, tbl := accountsTable(t, 1<<14)
	before := tbl.Stats()
	if err := tbl.FreezeAll(); err != nil {
		t.Fatal(err)
	}
	after := tbl.Stats()
	if after.FrozenBytes >= before.HotBytes {
		t.Fatalf("compression failed: %d -> %d", before.HotBytes, after.FrozenBytes)
	}
}
