// Package datablocks is a Go implementation of Data Blocks — the
// compressed columnar storage format for hybrid OLTP & OLAP database
// systems introduced by Lang et al. (SIGMOD 2016) for HyPer.
//
// Relations are divided into fixed-size chunks. Hot chunks remain
// uncompressed and writable; cold chunks are frozen into immutable,
// self-contained Data Blocks that choose the optimal byte-addressable
// compression per attribute (single value, order-preserving dictionary,
// truncation), carry min/max SMAs and Positional SMA (PSMA) lookup tables,
// and still serve O(1) point accesses for transactional workloads.
// Analytical scans evaluate SARGable predicates directly on the compressed
// data with SIMD-within-a-register kernels, narrow scan ranges with SMAs
// and PSMAs, and feed compiled tuple-at-a-time query pipelines through an
// interpreted vectorized scan layer.
//
// The top-level API covers table management, OLTP operations (insert,
// point lookup, delete, update), freezing, predicate scans, a physical
// query-plan layer (joins, aggregation, ordering) and durable databases
// (OpenPath: a versioned on-disk catalog plus per-table block manifests
// make the data directory survive process restarts). See the examples
// directory for end-to-end usage and ARCHITECTURE.md for the
// paper-to-module map and the on-disk format.
package datablocks

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"datablocks/internal/blockstore"
	"datablocks/internal/core"
	"datablocks/internal/exec"
	"datablocks/internal/index"
	"datablocks/internal/obs"
	"datablocks/internal/simd"
	"datablocks/internal/storage"
	"datablocks/internal/types"
	"datablocks/internal/wal"
	"datablocks/internal/walfs"
)

// Re-exported fundamental types, so users need only this package.
type (
	// Kind is a logical column type.
	Kind = types.Kind
	// Column describes one attribute.
	Column = types.Column
	// Value is a dynamically typed cell.
	Value = types.Value
	// Row is a tuple of values.
	Row = types.Row
	// ColumnData is one column of a pre-columnarized BulkLoad batch.
	ColumnData = core.ColumnData
	// CompareOp is a SARGable comparison operator.
	CompareOp = types.CompareOp
	// MemStats summarizes a table's memory footprint.
	MemStats = storage.MemStats
	// ColdStats summarizes a table's cold-store traffic (evictions,
	// reloads, residency against the budget, on-disk footprint).
	ColdStats = storage.ColdStats
	// StoreStats is the block store's raw I/O ledger.
	StoreStats = blockstore.StoreStats
	// QueryProfile is the EXPLAIN-ANALYZE view of a profiled query
	// (QueryOptions.Profile), attached to Result.Profile.
	QueryProfile = exec.QueryProfile
	// TupleID is a stable tuple identifier.
	TupleID = storage.TupleID
	// Result is a materialized query result.
	Result = exec.Result
	// QueryOptions configures plan execution.
	QueryOptions = exec.Options
	// ScanMode selects the scan flavor (JIT, vectorized, +SARG, +PSMA).
	ScanMode = exec.ScanMode
	// Node is a physical query-plan operator.
	Node = exec.Node
	// Expr is a scalar expression for filters, projections and aggregates.
	Expr = exec.Expr
)

// Column kinds.
const (
	Int64   = types.Int64
	Float64 = types.Float64
	String  = types.String
)

// Comparison operators.
const (
	Eq        = types.Eq
	Ne        = types.Ne
	Lt        = types.Lt
	Le        = types.Le
	Gt        = types.Gt
	Ge        = types.Ge
	Between   = types.Between
	IsNull    = types.IsNull
	IsNotNull = types.IsNotNull
	Prefix    = types.Prefix
)

// Scan modes (Table 2 configurations).
const (
	ModeJIT                = exec.ModeJIT
	ModeVectorized         = exec.ModeVectorized
	ModeVectorizedSARG     = exec.ModeVectorizedSARG
	ModeVectorizedSARGPSMA = exec.ModeVectorizedSARGPSMA
)

// Value constructors.
var (
	Int       = types.IntValue
	Float     = types.FloatValue
	Str       = types.StringValue
	Null      = types.NullValue
	Date      = types.DateValue
	NewSchema = types.NewSchema
)

// Expression constructors for the plan layer.
var (
	Col      = exec.Col
	CInt     = exec.CInt
	CFloat   = exec.CFloat
	CStr     = exec.CStr
	Add      = exec.Add
	SubE     = exec.Sub
	MulE     = exec.Mul
	DivE     = exec.Div
	CmpE     = exec.Cmp
	AndE     = exec.And
	OrE      = exec.Or
	NotE     = exec.Not
	BetweenE = exec.BetweenE
)

// DB is a collection of named tables. A DB is either in-memory (Open) —
// tables live for the process, block stores are spill caches — or durable
// (OpenPath): the database owns a directory holding a versioned,
// CRC-protected catalog and per-table manifests, and Close makes the
// directory a complete, reopenable image of every table's frozen data.
type DB struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	defaults []TableOption

	// dir is the durable root of an OpenPath database ("" for Open).
	dir string
	// catMu serializes catalog generation bumps and writes.
	catMu  sync.Mutex
	catGen uint64
}

// Open creates an empty database. Table options passed here become
// defaults for every CreateTable, applied before the table's own options
// — e.g. Open(WithBlockStore(dir), WithMemoryBudget(64<<20)) gives every
// table a cold block store under dir/<table> with a 64 MiB residency
// budget. Call Close to stop background compactors, flush frozen blocks
// to their stores and release them.
func Open(defaults ...TableOption) *DB {
	return &DB{tables: make(map[string]*Table), defaults: defaults}
}

// OpenPath opens (or creates) a durable database rooted at dir. Every
// table — recovered or created later — keeps its frozen Data Blocks under
// dir/<table> together with a generation-stamped manifest, and the
// directory root carries the table catalog, so a process restart
// reconstructs the full table set: OpenPath reads the newest catalog
// generation that verifies, rebuilds each table with every frozen chunk in
// the evicted state (block payloads are reloaded lazily on first touch),
// rebuilds primary-key indexes by streaming keys from the manifest's
// blocks, and garbage-collects block files a previous generation or an
// interrupted write left unreferenced.
//
// Durability covers frozen data: freezes, flushes and Close write the
// manifest atomically, and DB.Close freezes the hot tail first, so a clean
// close reopens to exactly the pre-close contents. Without WithWAL, rows
// still hot at a crash are lost; tables created with WithWAL extend
// durability to every acknowledged write — reopening replays each write
// stripe's log past the newest manifest generation — and carry their
// write-epoch high-water mark across restarts.
//
// The defaults are table options applied to recovered and newly created
// tables alike — use them for runtime tuning such as WithAutoFreeze and
// WithMemoryBudget. Structural options of recovered tables (schema,
// primary key, chunk capacity) come from the catalog and override the
// defaults. A corrupt or torn newest catalog/manifest generation falls
// back to the previous one; a missing catalog opens an empty database.
func OpenPath(dir string, defaults ...TableOption) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datablocks: %w", err)
	}
	db := &DB{tables: make(map[string]*Table), defaults: defaults, dir: dir}
	cat, err := blockstore.LoadCatalog(dir)
	if err != nil {
		return nil, fmt.Errorf("datablocks: open %s: %w", dir, err)
	}
	if cat == nil {
		return db, nil
	}
	db.catGen = cat.Generation
	blockstore.PruneCatalogs(dir, cat.Generation)
	for _, ct := range cat.Tables {
		// The catalog's structural record is authoritative, applied after
		// the defaults: WithPrimaryKey(ct.PrimaryKey) deliberately runs
		// even when empty, so a DB-level WithPrimaryKey default cannot
		// graft a primary key onto a table that never had one.
		opts := []TableOption{WithChunkRows(ct.ChunkRows), WithPrimaryKey(ct.PrimaryKey), WithWriteStripes(ct.WriteStripes)}
		if ct.Wal {
			opts = append(opts, WithWAL())
		}
		if _, err := db.createTable(ct.Name, ct.Columns, true, opts...); err != nil {
			return nil, fmt.Errorf("datablocks: recover table %q: %w", ct.Name, err)
		}
	}
	return db, nil
}

// Close stops every table's background compactor and waits for in-flight
// freezes to finish. For a durable database (OpenPath) it then freezes
// each table's hot tail, flushes the frozen set to the block store, writes
// each table's manifest and a fresh catalog generation — making the
// directory a complete image of the database for the next OpenPath. For
// an in-memory database, tables whose block store was a pure spill cache
// (never persisted) reload their evicted blocks into RAM and the store's
// files are garbage-collected: the directory holds nothing a future
// process could use, so nothing is left behind. Note the memory
// implication: the reload re-inflates the table's whole frozen set past
// any WithMemoryBudget, which is what keeps the table readable after the
// files are gone — for datasets that genuinely cannot fit in RAM, make
// the table durable (OpenPath or WithRecover) so Close keeps the blocks
// on disk instead.
//
// Close returns the first error encountered. The data remains readable
// and writable after Close; only automatic freezing stops.
func (db *DB) Close() error {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	var first error
	for _, t := range tables {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
		if !t.persist && t.bs != nil {
			if err := t.dropStoreFiles(); err != nil && first == nil {
				first = err
			}
		}
	}
	if db.dir != "" {
		db.mu.RLock()
		err := db.writeCatalogLocked()
		db.mu.RUnlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeCatalogLocked persists a fresh catalog generation listing every
// durable table. Caller holds db.mu (read or write).
func (db *DB) writeCatalogLocked() error {
	cat := &blockstore.Catalog{}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		if !t.persist {
			continue
		}
		cat.Tables = append(cat.Tables, blockstore.CatalogTable{
			Name:         t.name,
			Columns:      t.schema.Columns,
			PrimaryKey:   t.pkName,
			ChunkRows:    t.rel.ChunkCapacity(),
			WriteStripes: t.writeStripes,
			Wal:          t.walEnabled,
		})
	}
	db.catMu.Lock()
	defer db.catMu.Unlock()
	db.catGen++
	cat.Generation = db.catGen
	return blockstore.WriteCatalog(db.dir, cat)
}

// TableOption customizes table creation.
type TableOption func(*Table)

// WithPrimaryKey maintains a unique hash index on the named int64 column,
// enabling indexed point lookups (Table 3's "PK index" configurations).
// An empty name clears a primary key applied by an earlier option (e.g. a
// database-wide default).
func WithPrimaryKey(col string) TableOption {
	return func(t *Table) { t.pkName = col }
}

// WithChunkRows bounds rows per chunk (default 2^16, the Data Block
// maximum).
func WithChunkRows(n int) TableOption {
	return func(t *Table) { t.chunkRows = n }
}

// WithParallelism sets the table's default morsel parallelism: Scan,
// LookupScan and Table.Query split their work across up to n workers when
// the caller's QueryOptions leave Parallelism at zero. n <= 0 selects
// runtime.GOMAXPROCS(0) at query time. Passed to Open it becomes the
// database-wide default for every table. Callers can always override per
// query via QueryOptions.Parallelism (1 forces serial execution).
func WithParallelism(n int) TableOption {
	return func(t *Table) {
		t.defaultPar = n
		t.hasDefaultPar = true
	}
}

// WithAutoFreeze runs a background compactor for the table: whenever at
// least threshold chunks have filled up and fallen behind the insert tail,
// the compactor freezes them into Data Blocks. Compression happens off the
// write path and outside the relation lock, so OLTP writes, point lookups
// and OLAP scans proceed while cold chunks are compressed — the hybrid
// workload of §1. threshold < 1 is treated as 1 (freeze as soon as a chunk
// seals). Stop the compactor with Table.Close or DB.Close.
func WithAutoFreeze(threshold int) TableOption {
	if threshold < 1 {
		threshold = 1
	}
	return func(t *Table) { t.autoFreeze = threshold }
}

// WithBlockStore attaches a disk-backed cold block store rooted at
// dir/<table>: frozen chunks become evictable to secondary storage and
// are transparently reloaded (and pinned) when scans or point lookups
// touch them. On its own the store only fills on Table.Close (flush) or
// manual eviction; combine with WithMemoryBudget for automatic
// temperature-driven eviction, and with WithAutoFreeze to keep the
// frozen set growing behind the insert tail.
func WithBlockStore(dir string) TableOption {
	return func(t *Table) { t.storeDir = dir }
}

// WithMemoryBudget bounds the RAM resident set of frozen Data Blocks to
// bytes: whenever freezing or reloading pushes past the budget, the
// background compactor evicts the coldest unpinned blocks — by observed
// scan/lookup access, not chunk age — to the block store. Requires
// WithBlockStore. The budget governs compressed frozen payloads; the
// uncompressed hot tail and in-flight pinned blocks are outside it.
func WithMemoryBudget(bytes int64) TableOption {
	return func(t *Table) { t.memBudget = bytes }
}

// WithWriteStripes shards the table's write path into n independent
// stripes (rounded up to a power of two, capped at 256). Each stripe has
// its own write lock, hot-chunk appender and — with WithWAL — write-ahead
// log, so concurrent writers whose primary keys hash to different stripes
// commit in parallel instead of serializing on one table mutex. Rows hash
// to stripes by primary key; tables without a primary key distribute
// inserts round-robin. n <= 1 keeps the classic single-stripe path.
func WithWriteStripes(n int) TableOption {
	return func(t *Table) { t.writeStripes = n }
}

// WithWAL gives each write stripe a durable write-ahead log with group
// commit: an acknowledged Insert, Update, Delete or BulkLoad has been
// fsynced (one fsync acknowledges a whole batch of concurrent writers)
// and survives any later crash — reopening the database replays each
// stripe's log past the newest manifest generation. Requires a durable
// table (OpenPath, or WithRecover + WithBlockStore) and a primary key
// (replay identifies rows by key).
//
// Error semantics follow the usual WAL discipline: when an append or
// fsync fails, the write reports the error, the log is poisoned and every
// later write fails too. In-memory state may then be ahead of durable
// state for the rest of the process lifetime; what was acknowledged
// before the failure remains durable.
func WithWAL() TableOption {
	return func(t *Table) { t.walEnabled = true }
}

// withWALFS swaps the WAL's file layer; the crash tests inject torn
// writes and simulated power loss through it.
func withWALFS(fs walfs.FS) TableOption {
	return func(t *Table) { t.walFS = fs }
}

// WithRecover makes the table durable in its block store directory
// without a database-level catalog: CreateTable recovers the frozen chunk
// sequence from the directory's newest valid manifest generation (if one
// exists), rebuilds the primary-key index by streaming keys from the
// stored blocks, garbage-collects unreferenced block files, and from then
// on persists a fresh manifest on every freeze, flush and Close. Requires
// WithBlockStore; the schema, primary key and chunk capacity passed to
// CreateTable must match the ones the manifest was written with (a
// durable database opened with OpenPath gets all of this from its catalog
// instead). Tables without WithRecover treat their block store as a spill
// cache owned by this process: DB.Close garbage-collects its files.
func WithRecover() TableOption {
	return func(t *Table) {
		t.persist = true
		t.recoverOnOpen = true
	}
}

// CreateTable registers a new table. The DB's default options (see Open)
// are applied first, then the table's own. In a durable database
// (OpenPath) the table automatically keeps its frozen blocks under the
// database directory and is registered in the on-disk catalog.
func (db *DB) CreateTable(name string, cols []Column, opts ...TableOption) (*Table, error) {
	return db.createTable(name, cols, false, opts...)
}

// createTable is the shared construction path of CreateTable and catalog
// recovery (fromCatalog): the latter skips the catalog write — the table
// definition just came from it. It holds db.mu across store opening and
// manifest recovery so two racing creations of the same name cannot both
// run recovery (and its garbage collection) against one directory.
func (db *DB) createTable(name string, cols []Column, fromCatalog bool, opts ...TableOption) (*Table, error) {
	t := &Table{name: name, schema: types.NewSchema(cols...), sortBy: -1}
	for _, opt := range db.defaults {
		opt(t)
	}
	for _, opt := range opts {
		opt(t)
	}
	if db.dir != "" {
		// Durable database: the table's blocks live under the database
		// root, it is listed in the catalog, and reopen recovers it.
		t.storeDir = db.dir
		t.persist = true
		t.recoverOnOpen = true
	}
	if t.pkName != "" {
		i := t.schema.ColumnIndex(t.pkName)
		if i < 0 {
			return nil, fmt.Errorf("datablocks: primary key column %q not in schema", t.pkName)
		}
		if t.schema.Columns[i].Kind != types.Int64 {
			return nil, fmt.Errorf("datablocks: primary key column %q must be int64", t.pkName)
		}
		t.pkCol = i
		t.pk = index.NewHash(0)
	} else {
		t.pkCol = -1
	}
	t.writeStripes = normalizeStripes(t.writeStripes)
	t.stripes = make([]tableStripe, t.writeStripes)
	t.rel = storage.NewRelation(t.schema, t.chunkRows)
	t.rel.SetWriteStripes(t.writeStripes)
	if t.memBudget > 0 && t.storeDir == "" {
		return nil, fmt.Errorf("datablocks: WithMemoryBudget on table %q requires WithBlockStore", name)
	}
	if t.recoverOnOpen && t.storeDir == "" {
		return nil, fmt.Errorf("datablocks: WithRecover on table %q requires WithBlockStore", name)
	}
	if t.walEnabled {
		if !t.persist || t.storeDir == "" {
			return nil, fmt.Errorf("datablocks: WithWAL on table %q requires a durable table (OpenPath, or WithRecover with WithBlockStore)", name)
		}
		if t.pk == nil {
			return nil, fmt.Errorf("datablocks: WithWAL on table %q requires a primary key", name)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("datablocks: table %q already exists", name)
	}
	if t.storeDir != "" {
		bs, err := blockstore.Open(filepath.Join(t.storeDir, name))
		if err != nil {
			return nil, fmt.Errorf("datablocks: table %q: %w", name, err)
		}
		t.bs = bs
		t.rel.SetBlockStore(bs, t.memBudget, t.wakeCompactor)
		if t.recoverOnOpen {
			if err := t.recoverFromManifest(); err != nil {
				return nil, fmt.Errorf("datablocks: table %q: %w", name, err)
			}
		}
		if t.walEnabled {
			// Open the stripe logs and replay records past the manifest's
			// truncation points — including the first open ever (a crash
			// can predate the first manifest generation).
			if err := t.openWALAndReplay(); err != nil {
				return nil, fmt.Errorf("datablocks: table %q: wal: %w", name, err)
			}
		}
	}
	db.tables[name] = t
	if t.persist && !fromCatalog && db.dir != "" {
		if err := db.writeCatalogLocked(); err != nil {
			delete(db.tables, name)
			return nil, fmt.Errorf("datablocks: table %q: %w", name, err)
		}
	}
	if t.autoFreeze > 0 || t.memBudget > 0 {
		t.freezeWake = make(chan struct{}, 1)
		t.stop = make(chan struct{})
		t.compactorDone = make(chan struct{})
		go t.compact()
	}
	return t, nil
}

// recoverFromManifest rebuilds the table from its block directory's newest
// valid manifest generation: every frozen chunk is restored evicted
// (payload reloaded lazily on first touch), the primary-key index is
// rebuilt by streaming keys from the stored blocks one at a time, and
// block files left unreferenced — superseded generations, writes a crash
// orphaned — are garbage-collected along with stale manifest records.
// When no manifest exists the table starts empty and any stray block
// files are cleared: nothing referenced them.
func (t *Table) recoverFromManifest() error {
	dir := t.bs.Dir()
	man, err := blockstore.LoadManifest(dir)
	if err != nil {
		return err
	}
	keep := make(map[blockstore.Handle]bool)
	if man != nil {
		t.manGen = man.Generation
		t.sortBy = man.SortBy
		// Cross-restart epoch continuity: restore the write-epoch
		// high-water mark before WAL replay mints fresh epochs, and stash
		// the per-stripe truncation points for openWALAndReplay.
		t.rel.AdvanceEpoch(man.Epoch)
		t.walApplied = man.WalApplied
		for _, mc := range man.Chunks {
			keep[mc.Handle] = true
		}
		blockstore.PruneManifests(dir, man.Generation)
	} else {
		blockstore.PruneManifests(dir, 0)
	}
	if _, err := t.bs.Retain(keep); err != nil {
		return err
	}
	if man == nil {
		return nil
	}
	for i, mc := range man.Chunks {
		if err := t.rel.RestoreEvicted(mc.Handle, mc.Rows, mc.Bytes, mc.Deleted, mc.NumDeleted); err != nil {
			return fmt.Errorf("manifest chunk %d: %w", i, err)
		}
	}
	if t.pk != nil {
		if err := t.pk.Rebuild(t.rel, t.pkCol); err != nil {
			return err
		}
	}
	if t.memBudget > 0 {
		// The index rebuild reloaded blocks one at a time but released
		// only the pins, not the payloads: trim the resident set back
		// under the budget before the table goes live, so reopening never
		// starts over budget.
		if _, err := t.rel.EvictUnderBudget(); err != nil {
			return err
		}
	}
	return nil
}

// dropStoreFiles clears a spill-cache block store at DB.Close: evicted
// blocks are reloaded into RAM first (the table stays fully readable),
// then every block file is removed and the directory is deleted if
// nothing else lives in it. Never called for durable tables.
func (t *Table) dropStoreFiles() error {
	if err := t.rel.UnevictAll(); err != nil {
		return err
	}
	if _, err := t.bs.Retain(nil); err != nil {
		return err
	}
	os.Remove(t.bs.Dir()) // best effort: fails when non-store files remain
	return nil
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table is a chunked hybrid relation: hot uncompressed chunks plus frozen
// Data Blocks. All methods are safe for concurrent use; write operations
// (Insert, Delete, Update) serialize per write stripe — rows hash to
// stripes by primary key (WithWriteStripes; one stripe by default), each
// with its own write lock, hot-chunk appender and optional write-ahead
// log, so writers on different stripes commit in parallel while the
// primary-key index and the relation stay consistent. Whole-table
// operations (BulkLoad, sorted freezes) take every stripe lock. Reads and
// scans run against epoch-pinned chunk snapshots: point lookups are
// anomaly-free under concurrent updates (they resolve the pre- or
// post-update version, never neither), and scans never observe row
// versions committed after their snapshot epoch.
type Table struct {
	name      string
	schema    *types.Schema
	rel       *storage.Relation
	pkName    string
	pkCol     int
	pk        *index.Hash
	chunkRows int

	// Default morsel parallelism for queries that leave
	// QueryOptions.Parallelism at zero (WithParallelism).
	defaultPar    int
	hasDefaultPar bool

	// Cold block store state (WithBlockStore / WithMemoryBudget).
	storeDir  string
	memBudget int64
	bs        *blockstore.Store

	// Durability state (WithRecover / OpenPath). persist: freezes, flushes
	// and Close write a manifest generation; recoverOnOpen: CreateTable
	// rebuilds the table from the newest valid manifest. sortBy records
	// the column of the last sorted freeze (-1 unsorted) for the manifest.
	persist       bool
	recoverOnOpen bool
	manMu         sync.Mutex
	manGen        uint64
	sortBy        int

	// Striped write path (WithWriteStripes) and write-ahead logging
	// (WithWAL). writeStripes is the normalized stripe count (power of
	// two, >= 1); stripes[i] carries stripe i's write lock, WAL and
	// LSN bookkeeping. walSeq is the table-global LSN counter shared by
	// every stripe's log, so replay can merge the stripe files into one
	// total order. rr distributes inserts of primary-key-less tables.
	writeStripes int
	walEnabled   bool
	walFS        walfs.FS // nil: the real filesystem
	stripes      []tableStripe
	walSeq       atomic.Uint64
	walStats     wal.Stats
	rr           atomic.Uint64
	// walApplied stashes the recovered manifest's per-stripe truncation
	// points between recoverFromManifest and openWALAndReplay.
	walApplied []uint64

	// Background compactor state (WithAutoFreeze).
	autoFreeze    int
	freezeWake    chan struct{}
	stop          chan struct{}
	compactorDone chan struct{}
	closeOnce     sync.Once
	compactMu     sync.Mutex
	compactErr    error

	// ops counts the table's API traffic (see TableOps). These sit on
	// the per-call paths, not inside scan kernels, so the shared atomic
	// instruments are appropriate.
	ops tableOps
}

// tableStripe is one lane of the sharded write path: rows whose primary
// key hashes to this stripe serialize on its write lock, append to its
// relation stripe and log to its write-ahead log, independently of every
// other stripe.
type tableStripe struct {
	// wmu serializes the stripe's two-step write operations (relation +
	// primary-key index) and guards lastLSN/chunkLSN. Lock order: wmu
	// before the relation locks; two stripes (key-changing updates,
	// whole-table operations) are locked in ascending index order.
	wmu sync.Mutex
	// w is the stripe's write-ahead log; nil without WithWAL.
	w *wal.Log
	// lastLSN is the highest LSN this stripe has assigned (drawn from the
	// table-global sequence under wmu, after the effect is applied — so a
	// checkpoint that reads lastLSN under wmu knows every effect at or
	// below it is visible in the relation).
	lastLSN uint64
	// chunkLSN maps a chunk ordinal to the first (lowest) LSN of a record
	// whose effect lives in that chunk, for chunks not yet durably frozen.
	// The stripe's WAL truncation point is min(chunkLSN)-1 capped at
	// lastLSN: everything below it is fully covered by flushed chunks.
	// Entries are dropped once their chunk is durable.
	chunkLSN map[uint32]uint64
}

// noteChunk records that a WAL record at lsn touched chunk ord. The first
// LSN wins: replay must start at or before the oldest record whose effect
// the chunk holds. Caller holds wmu (or is single-threaded recovery).
func (st *tableStripe) noteChunk(ord uint32, lsn uint64) {
	if st.chunkLSN == nil {
		st.chunkLSN = make(map[uint32]uint64)
	}
	if _, ok := st.chunkLSN[ord]; !ok {
		st.chunkLSN[ord] = lsn
	}
}

// tableOps is the obs-instrument backing of TableOps.
type tableOps struct {
	inserts, updates, deletes obs.Counter
	lookups, lookupMisses     obs.Counter
	scans, queries            obs.Counter
	rowsWritten, rowsRead     obs.Counter
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Relation exposes the underlying storage for plan construction.
func (t *Table) Relation() *storage.Relation { return t.rel }

// NumRows returns the live row count.
func (t *Table) NumRows() int { return t.rel.NumRows() }

// normalizeStripes clamps a WithWriteStripes argument to [1, 256] and
// rounds it up to a power of two, so stripe routing is a mask.
func normalizeStripes(n int) int {
	if n < 1 {
		return 1
	}
	if n > 256 {
		n = 256
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// stripeOf routes a primary key to its write stripe. The splitmix
// finalizer decorrelates sequential keys from stripe assignment.
func (t *Table) stripeOf(key int64) int {
	return int(simd.Mix64(uint64(key)) & uint64(t.writeStripes-1))
}

// insertStripe picks the write stripe for a fresh row: by primary key
// when the table has one, round-robin otherwise.
func (t *Table) insertStripe(key int64) int {
	if t.writeStripes == 1 {
		return 0
	}
	if t.pk != nil {
		return t.stripeOf(key)
	}
	return int(t.rr.Add(1) & uint64(t.writeStripes-1))
}

// lockAllStripes takes every stripe's write lock in ascending index order
// (the only order any path uses, so whole-table operations and
// cross-stripe updates cannot deadlock). Release with unlockAllStripes.
func (t *Table) lockAllStripes() {
	for i := range t.stripes {
		t.stripes[i].wmu.Lock()
	}
}

func (t *Table) unlockAllStripes() {
	for i := len(t.stripes) - 1; i >= 0; i-- {
		t.stripes[i].wmu.Unlock()
	}
}

// Insert appends a row, maintaining the primary-key index if present.
// With WithWAL, a nil return means the row has been fsynced and survives
// any later crash; a non-nil return means it must be treated as failed.
func (t *Table) Insert(row Row) (TupleID, error) {
	var key int64
	if t.pk != nil {
		if len(row) != t.schema.NumColumns() {
			return TupleID{}, fmt.Errorf("datablocks: row has %d values, schema has %d", len(row), t.schema.NumColumns())
		}
		if row[t.pkCol].IsNull() {
			return TupleID{}, fmt.Errorf("datablocks: primary key %q cannot be NULL", t.pkName)
		}
		key = row[t.pkCol].Int()
	}
	si := t.insertStripe(key)
	st := &t.stripes[si]
	st.wmu.Lock()
	tid, err := t.rel.InsertStripe(si, row)
	if err != nil {
		st.wmu.Unlock()
		return tid, err
	}
	if t.pk != nil {
		if err := t.pk.Insert(key, tid); err != nil {
			t.rel.Delete(tid)
			st.wmu.Unlock()
			return TupleID{}, err
		}
	}
	var b *wal.Batch
	if st.w != nil {
		// Apply-then-log, both under wmu: a checkpoint reading lastLSN
		// knows every effect at or below it is visible in the relation.
		lsn, batch, err := st.w.Append(wal.OpInsert, key, row)
		if err != nil {
			// Poisoned log: undo the in-memory effect so memory and disk
			// do not diverge on a write we are about to fail.
			t.rel.Delete(tid)
			t.pk.Delete(key)
			st.wmu.Unlock()
			return TupleID{}, err
		}
		st.noteChunk(tid.Chunk, lsn)
		st.lastLSN = lsn
		b = batch
	}
	st.wmu.Unlock()
	if st.w != nil {
		if err := st.w.Wait(b); err != nil {
			// The row is applied in memory but its durability failed; the
			// log is poisoned and in-memory state now runs ahead of disk.
			return TupleID{}, err
		}
	}
	t.ops.inserts.Inc()
	t.ops.rowsWritten.Inc()
	if tid.Chunk > 0 && tid.Row == 0 {
		// First row of a fresh chunk: the previous tail just sealed.
		t.wakeCompactor()
	}
	return tid, nil
}

// BulkLoad appends pre-columnarized data (fast path for loaders) and
// rebuilds the primary-key index if present. With WithWAL each row is
// logged to its own key's stripe log — the same file every later update
// or delete of that key logs to, so per-stripe replay thresholds can
// never cover a key's delete while missing its insert — batched as one
// group commit (one append, one fsync) per participating stripe.
func (t *Table) BulkLoad(cols []core.ColumnData, n int) error {
	t.lockAllStripes()
	ords, err := t.rel.BulkAppendTracked(cols, n)
	if err != nil {
		t.unlockAllStripes()
		return err
	}
	t.ops.rowsWritten.Add(uint64(n))
	if t.pk != nil {
		if err := t.pk.Rebuild(t.rel, t.pkCol); err != nil {
			t.unlockAllStripes()
			return err
		}
	}
	var batches []*wal.Batch
	if t.walEnabled && n > 0 {
		// Group rows by the stripe their primary key hashes to (WithWAL
		// implies a primary key). Bulk-loaded chunks interleave keys from
		// every stripe, so each participating stripe pins all of them: its
		// log cannot truncate before the chunks its records landed in are
		// durably frozen.
		perStripe := make([][]types.Row, len(t.stripes))
		for i := 0; i < n; i++ {
			row := rowAt(cols, i)
			si := 0
			if t.writeStripes > 1 && !row[t.pkCol].IsNull() {
				si = t.stripeOf(row[t.pkCol].Int())
			}
			perStripe[si] = append(perStripe[si], row)
		}
		batches = make([]*wal.Batch, len(t.stripes))
		for si, rows := range perStripe {
			if len(rows) == 0 {
				continue
			}
			st := &t.stripes[si]
			first, last, batch, err := st.w.AppendRows(rows, t.pkCol)
			if err != nil {
				t.unlockAllStripes()
				return err
			}
			for _, ord := range ords {
				st.noteChunk(ord, first)
			}
			st.lastLSN = last
			batches[si] = batch
		}
	}
	t.unlockAllStripes()
	t.wakeCompactor()
	var first error
	for si, b := range batches {
		if b == nil {
			continue
		}
		if err := t.stripes[si].w.Wait(b); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// rowAt materializes row i of a columnar batch as a tuple (the WAL's
// record unit).
func rowAt(cols []core.ColumnData, i int) types.Row {
	row := make(types.Row, len(cols))
	for c := range cols {
		cd := &cols[c]
		if cd.Nulls != nil && i < len(cd.Nulls) && cd.Nulls[i] {
			row[c] = types.NullValue(cd.Kind)
			continue
		}
		switch cd.Kind {
		case types.Int64:
			row[c] = types.IntValue(cd.Ints[i])
		case types.Float64:
			row[c] = types.FloatValue(cd.Floats[i])
		default:
			row[c] = types.StringValue(cd.Strs[i])
		}
	}
	return row
}

// Lookup resolves a primary key through the hash index: the OLTP point
// access path. Works identically on hot and frozen tuples (§3.4).
//
// Lookups are anomaly-free under concurrent updates: the reader captures
// the relation's write epoch *before* resolving the index record, then
// reads the version visible at that epoch — the current tuple, or, while
// an update is mid-flight (new version published but not yet committed,
// or committed after the reader's epoch), the previous version. A key
// that exists at all times therefore always resolves; a miss means the
// key was absent or deleted at the reader's epoch.
func (t *Table) Lookup(key int64) (Row, bool) {
	if t.pk == nil {
		return nil, false
	}
	t.ops.lookups.Inc()
	row, ok := t.lookupVersioned(key)
	if ok {
		t.ops.rowsRead.Inc()
	} else {
		t.ops.lookupMisses.Inc()
	}
	return row, ok
}

// lookupVersioned is Lookup's epoch-retry loop.
func (t *Table) lookupVersioned(key int64) (Row, bool) {
	for {
		// Epoch first, record second: the writer publishes the index
		// record before it commits (mints the epoch), so a record newer
		// than our epoch always still carries a previous version born at
		// or before it — except in the doubly-stale case handled below.
		e := t.rel.ReadEpoch()
		rec, ok := t.pk.LookupRecord(key)
		if !ok {
			return nil, false
		}
		row, vis := t.rel.GetAt(rec.Cur, e)
		if vis == storage.Visible {
			return row, true
		}
		if rec.HasPrev {
			prow, pvis := t.rel.GetAt(rec.Prev, e)
			if pvis == storage.Visible {
				return prow, true
			}
			if vis == storage.NotYetBorn && pvis == storage.NotYetBorn {
				// Both versions postdate our epoch: the goroutine was
				// descheduled between reading the epoch and the record
				// while two commits landed. A fresh epoch resolves it.
				runtime.Gosched()
				continue
			}
		}
		// Cur retired at or before our epoch (and any previous version
		// even earlier): the key was genuinely deleted. A record without
		// a previous version whose Cur is not yet born is a key created
		// by an in-flight key-changing update — absent at our epoch.
		return nil, false
	}
}

// LookupScan finds a row by scanning with a SARGable equality predicate —
// Table 3's "no index" configuration, accelerated by SMAs/PSMAs when the
// data is clustered. A scan failure is reported as an error, distinct
// from a clean miss.
func (t *Table) LookupScan(col string, key int64, mode ScanMode) (Row, bool, error) {
	res, err := t.Scan(t.schema.Names(), []Pred{{Col: col, Op: Eq, Lo: Int(key)}}, QueryOptions{Mode: mode})
	if err != nil {
		return nil, false, err
	}
	if res.NumRows() == 0 {
		return nil, false, nil
	}
	return res.Row(0), true, nil
}

// Delete removes a row by primary key (delete flag; frozen tuples keep
// their slot). The tuple is retired with a fresh write epoch before the
// index entry goes away, so a concurrent reader either still sees the row
// (its epoch predates the delete) or takes a legitimate miss.
//
// The boolean reports whether the key existed (and the delete was applied
// in memory); the error reports durability. On a WAL table a non-nil
// error with existed=true means the row is gone from the table but the
// delete's group commit failed: the log is poisoned, the record may or
// may not have reached disk, and the caller must treat the delete as not
// durable.
func (t *Table) Delete(key int64) (bool, error) {
	if t.pk == nil {
		return false, nil
	}
	st := &t.stripes[t.stripeOf(key)]
	st.wmu.Lock()
	if st.w != nil {
		if err := st.w.Err(); err != nil {
			// Poisoned log: refuse before applying, so memory does not
			// drift further ahead of disk. (A concurrent poisoning between
			// this check and the append below is caught by Wait.)
			st.wmu.Unlock()
			return false, err
		}
	}
	tid, ok := t.pk.Lookup(key)
	if !ok {
		st.wmu.Unlock()
		return false, nil
	}
	if !t.rel.Delete(tid) {
		st.wmu.Unlock()
		return false, nil
	}
	t.pk.Delete(key)
	var b *wal.Batch
	if st.w != nil {
		lsn, batch, err := st.w.Append(wal.OpDelete, key, nil)
		if err != nil {
			st.wmu.Unlock()
			return true, err
		}
		st.noteChunk(tid.Chunk, lsn)
		st.lastLSN = lsn
		b = batch
	}
	st.wmu.Unlock()
	if st.w != nil {
		if err := st.w.Wait(b); err != nil {
			return true, err
		}
	}
	t.ops.deletes.Inc()
	return true, nil
}

// Update rewrites a row by primary key with the anomaly-free three-step
// protocol: the new version is appended as a pending (invisible) row, the
// index record is repointed at it while retaining the previous version,
// and the commit atomically — under one write epoch — makes the new
// version visible and retires the old one. A concurrent Lookup resolves
// the pre-update version up to the commit epoch and the post-update
// version from it, never neither. A failed update — unknown key, an
// invalid row, or a new primary key that would collide with an existing
// row — leaves both the tuple and the index unchanged.
func (t *Table) Update(key int64, row Row) error {
	if t.pk == nil {
		return fmt.Errorf("datablocks: table %q has no primary key", t.name)
	}
	if len(row) != t.schema.NumColumns() {
		return fmt.Errorf("datablocks: row has %d values, schema has %d", len(row), t.schema.NumColumns())
	}
	if row[t.pkCol].IsNull() {
		return fmt.Errorf("datablocks: primary key %q cannot be NULL", t.pkName)
	}
	newKey := row[t.pkCol].Int()
	// Lock the old and new key's stripes in ascending index order (one
	// lock when they coincide): the new version appends to the new key's
	// stripe, the retirement touches the old key's row.
	si, sj := t.stripeOf(key), t.stripeOf(newKey)
	lo, hi := si, sj
	if lo > hi {
		lo, hi = hi, lo
	}
	t.stripes[lo].wmu.Lock()
	if hi != lo {
		t.stripes[hi].wmu.Lock()
	}
	unlock := func() {
		if hi != lo {
			t.stripes[hi].wmu.Unlock()
		}
		t.stripes[lo].wmu.Unlock()
	}
	oldTid, ok := t.pk.Lookup(key)
	if !ok {
		unlock()
		return fmt.Errorf("datablocks: key %d not found", key)
	}
	if newKey != key {
		if _, taken := t.pk.Lookup(newKey); taken {
			unlock()
			return fmt.Errorf("datablocks: update of key %d to %d collides with an existing row", key, newKey)
		}
	}
	// Step 1: insert the new version, invisible to every reader.
	newTid, err := t.rel.InsertPendingStripe(sj, row)
	if err != nil {
		unlock()
		return err
	}
	// Step 2: publish the new tuple identifier in the index. For an
	// in-place update the record keeps the old version for readers whose
	// epoch will predate the commit; for a key change the new key gets a
	// fresh record (the old row never answered to it) and the old key
	// keeps resolving the old version until the commit retires it.
	if newKey == key {
		t.pk.Publish(key, newTid)
	} else if err := t.pk.Insert(newKey, newTid); err != nil {
		t.rel.AbortPending(newTid)
		unlock()
		return err
	}
	// Step 3: commit — one epoch births the new version and retires the
	// old one.
	epoch, ok := t.rel.CommitUpdate(oldTid, newTid)
	if !ok {
		// The old version vanished between lookup and commit; impossible
		// while writes serialize on wmu, but keep the index consistent.
		t.rel.AbortPending(newTid)
		if newKey == key {
			t.pk.Unpublish(key)
		} else {
			t.pk.Delete(newKey)
		}
		unlock()
		return fmt.Errorf("datablocks: key %d vanished during update", key)
	}
	t.pk.Seal(newKey, epoch)
	if newKey != key {
		t.pk.Delete(key)
	}
	// Log the committed update. An in-place update is one record in its
	// key's stripe log. A key-changing update decomposes into an insert
	// record in the new key's stripe log and a delete record in the old
	// key's — each key's full history then lives in one log file, so
	// replay's per-file skip threshold can never reorder one key's
	// effects. Insert strictly before delete: within one log the insert
	// record precedes the delete (a torn tail cuts the delete first), and
	// across stripes the insert's fsync is awaited — under both stripe
	// locks, so no conflicting write can slip an LSN between the applied
	// effects and the delete record — before the delete is even staged.
	// Either way, no crash point can make the delete durable without the
	// insert: a half-applied (always unacknowledged) update leaves both
	// versions alive, never neither, so the pre-update row's acknowledged
	// insert is never destroyed.
	var bi, bj *wal.Batch
	sti, stj := &t.stripes[si], &t.stripes[sj]
	if sti.w != nil {
		var err error
		if newKey == key {
			var lsn uint64
			lsn, bi, err = sti.w.Append(wal.OpUpdate, key, row)
			if err == nil {
				sti.noteChunk(oldTid.Chunk, lsn)
				sti.noteChunk(newTid.Chunk, lsn)
				sti.lastLSN = lsn
			}
		} else {
			var dlsn, ilsn uint64
			ilsn, bj, err = stj.w.Append(wal.OpInsert, newKey, row)
			if err == nil {
				stj.noteChunk(newTid.Chunk, ilsn)
				stj.lastLSN = ilsn
				if sj != si {
					// Separate logs flush independently; only a durable
					// insert half may unblock logging the delete half.
					err = stj.w.Wait(bj)
					bj = nil
				}
			}
			if err == nil {
				dlsn, bi, err = sti.w.Append(wal.OpDelete, key, nil)
				if err == nil {
					sti.noteChunk(oldTid.Chunk, dlsn)
					sti.lastLSN = dlsn
				}
			}
		}
		if err != nil {
			// Poisoned log (or a failed insert-half fsync): the update is
			// applied in memory but will not fully reach disk; report it so
			// the caller treats the write as failed.
			unlock()
			return err
		}
	}
	unlock()
	if sti.w != nil {
		if bj != nil {
			// Same-stripe key change: one log, insert staged before delete,
			// batches flush in order — waiting both here cannot reorder the
			// records' durability.
			if err := stj.w.Wait(bj); err != nil {
				return err
			}
		}
		if err := sti.w.Wait(bi); err != nil {
			return err
		}
	}
	t.ops.updates.Inc()
	t.ops.rowsWritten.Inc()
	if newTid.Chunk > 0 && newTid.Row == 0 {
		// The rewritten version opened a fresh chunk: the previous tail
		// just sealed (updates append row versions like inserts do).
		t.wakeCompactor()
	}
	return nil
}

// Freeze compresses all full chunks into Data Blocks, keeping the hot tail
// writable. Tuple identifiers (and the PK index) remain valid. On a
// durable table the newly frozen blocks are flushed to the store and a
// fresh manifest generation is written before Freeze returns.
func (t *Table) Freeze() error {
	if err := t.rel.FreezeAll(core.FreezeOptions{SortBy: -1}, true); err != nil {
		return err
	}
	return t.persistFrozen()
}

// FreezeAll compresses every chunk, including the tail, and persists the
// manifest on durable tables like Freeze.
func (t *Table) FreezeAll() error {
	if err := t.rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		return err
	}
	return t.persistFrozen()
}

// FreezeSorted compresses every chunk, sorting each block by the named
// column to sharpen PSMA pruning for clustered queries (§3.2, Figure 11).
// The primary-key index is rebuilt because sorted freezing reassigns tuple
// identifiers. Sorted freezing is stop-the-world: it must not overlap
// writers or a background compactor (do not combine with WithAutoFreeze).
func (t *Table) FreezeSorted(col string) error {
	i := t.schema.ColumnIndex(col)
	if i < 0 {
		return fmt.Errorf("datablocks: unknown column %q", col)
	}
	t.lockAllStripes()
	defer t.unlockAllStripes()
	if err := t.rel.FreezeAll(core.FreezeOptions{SortBy: i}, false); err != nil {
		return err
	}
	if t.pk != nil {
		if err := t.pk.Rebuild(t.rel, t.pkCol); err != nil {
			return err
		}
	}
	// sortBy is read by manifest writes (compactor checkpoints included):
	// update it under the same lock.
	t.manMu.Lock()
	t.sortBy = i
	t.manMu.Unlock()
	return t.checkpoint(true)
}

// persistFrozen makes the current frozen set durable on a persistent
// table: every frozen block that has never been spilled is flushed to the
// store, then a fresh manifest generation is written atomically. A no-op
// for non-durable tables.
func (t *Table) persistFrozen() error { return t.checkpoint(false) }

// checkpoint is persistFrozen's body. On a WAL table it additionally
// records each stripe's applied LSN in the manifest and truncates stripe
// logs the manifest has fully caught up with. stripesHeld is true when
// the caller already holds every stripe write lock (FreezeSorted).
//
// Ordering is load-bearing: the applied LSNs are computed (pruning
// chunkLSN entries whose chunk is durable) BEFORE the manifest chunk
// list is snapshotted. The frozen set only grows, so every chunk the
// pruning treated as durable is referenced by this manifest; the reverse
// order could declare records durable in chunks the manifest misses —
// records the truncation below would then drop while recovery garbage-
// collects their chunk.
func (t *Table) checkpoint(stripesHeld bool) error {
	if !t.persist || t.bs == nil {
		return nil
	}
	if err := t.rel.FlushFrozen(); err != nil {
		return err
	}
	var applied []uint64
	if t.walEnabled {
		applied = make([]uint64, len(t.stripes))
		for i := range t.stripes {
			st := &t.stripes[i]
			if !stripesHeld {
				st.wmu.Lock()
			}
			// The stripe's truncation point: everything at or below it is
			// fully covered by durably flushed chunks. Reading lastLSN
			// under wmu guarantees every effect at or below it is already
			// visible in the relation (apply-then-log), hence captured by
			// the manifest snapshot taken after this loop.
			l := st.lastLSN
			for ord, first := range st.chunkLSN {
				if t.rel.ChunkDurable(int(ord)) {
					delete(st.chunkLSN, ord)
					continue
				}
				if first-1 < l {
					l = first - 1
				}
			}
			applied[i] = l
			if !stripesHeld {
				st.wmu.Unlock()
			}
		}
	}
	chunks := t.rel.ManifestChunks()
	t.manMu.Lock()
	t.manGen++
	err := blockstore.WriteManifest(t.bs.Dir(), &blockstore.Manifest{
		Generation: t.manGen,
		SortBy:     t.sortBy,
		Chunks:     chunks,
		Epoch:      t.rel.ReadEpoch(),
		WalApplied: applied,
	})
	t.manMu.Unlock()
	if err != nil || !t.walEnabled {
		return err
	}
	// The manifest is durable: stripe logs it fully covers can restart
	// empty. Failure to truncate is harmless — recovery skips records at
	// or below the manifest's applied LSN — so it is deliberately not an
	// error (TruncateAll also refuses by design while a batch is staged
	// unflushed or the log is poisoned).
	for i := range t.stripes {
		st := &t.stripes[i]
		if !stripesHeld {
			st.wmu.Lock()
		}
		if st.w != nil && len(st.chunkLSN) == 0 && st.lastLSN == applied[i] {
			_ = st.w.TruncateAll()
		}
		if !stripesHeld {
			st.wmu.Unlock()
		}
	}
	return nil
}

// openWALAndReplay opens each stripe's log under the table's block
// directory, replays every record past the recovered manifest's applied
// LSNs (merged across stripes in global LSN order), and leaves the logs
// ready for appends. Runs single-threaded at table construction.
func (t *Table) openWALAndReplay() error {
	fs := t.walFS
	if fs == nil {
		fs = walfs.OS
	}
	applied := make([]uint64, len(t.stripes))
	for i := range applied {
		if i < len(t.walApplied) {
			applied[i] = t.walApplied[i]
		}
	}
	type stripeRec struct {
		si  int
		rec wal.Record
	}
	var pending []stripeRec
	for i := range t.stripes {
		path := filepath.Join(t.bs.Dir(), fmt.Sprintf("wal-%d.log", i))
		w, recs, err := wal.Open(fs, path, t.schema, &t.walSeq, &t.walStats)
		if err != nil {
			return err
		}
		st := &t.stripes[i]
		st.w = w
		st.lastLSN = applied[i]
		for _, rec := range recs {
			if rec.LSN > st.lastLSN {
				st.lastLSN = rec.LSN
			}
			if rec.LSN <= applied[i] {
				// Already durable through the manifest's chunks; left in
				// the file by a failed or refused truncation.
				t.walStats.ReplaySkipped.Inc()
				continue
			}
			pending = append(pending, stripeRec{si: i, rec: rec})
		}
	}
	// A truncated log holds no records, but the manifest proves its LSNs
	// were consumed: advance the sequence past them too, so fresh records
	// sort after everything recovery ever saw.
	for _, a := range applied {
		for {
			cur := t.walSeq.Load()
			if a <= cur || t.walSeq.CompareAndSwap(cur, a) {
				break
			}
		}
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].rec.LSN < pending[b].rec.LSN })
	for _, pr := range pending {
		if err := t.replayRecord(pr.si, pr.rec); err != nil {
			return fmt.Errorf("replay lsn %d: %w", pr.rec.LSN, err)
		}
		t.walStats.Replayed.Inc()
	}
	t.walApplied = nil
	return nil
}

// replayRecord re-applies one WAL record during recovery. Replay is
// idempotent and convergent against partially durable state: a record
// whose effect already survived in restored chunks no-ops (or is
// harmlessly re-asserted and then overwritten by later records — every
// key's full history lives in one log file, so its records replay in
// order and the last one wins). Each touched chunk is re-registered in
// the owning stripe's chunkLSN with the record's original LSN, so the
// next checkpoint cannot truncate the log before the replayed effects
// are durably frozen.
func (t *Table) replayRecord(si int, rec wal.Record) error {
	st := &t.stripes[si]
	switch rec.Op {
	case wal.OpInsert:
		if rec.Row == nil {
			return fmt.Errorf("wal: insert record without a row")
		}
		key := rec.Row[t.pkCol].Int()
		if _, ok := t.pk.Lookup(key); ok {
			// The restored row is this record's effect or a later one
			// (the key's own log records replay in order after this).
			return nil
		}
		tid, err := t.rel.InsertStripe(t.stripeOf(key), rec.Row)
		if err != nil {
			return err
		}
		if err := t.pk.Insert(key, tid); err != nil {
			return err
		}
		st.noteChunk(tid.Chunk, rec.LSN)
	case wal.OpUpdate:
		// In-place only: key-changing updates are logged as a delete plus
		// an insert record.
		if rec.Row == nil {
			return fmt.Errorf("wal: update record without a row")
		}
		oldTid, ok := t.pk.Lookup(rec.Key)
		if !ok {
			// A later record durably removed the key; its replay (or the
			// durable state itself) governs.
			return nil
		}
		newTid, err := t.rel.Update(oldTid, rec.Row)
		if err != nil {
			return err
		}
		t.pk.Repoint(rec.Key, newTid)
		st.noteChunk(oldTid.Chunk, rec.LSN)
		st.noteChunk(newTid.Chunk, rec.LSN)
	case wal.OpDelete:
		tid, ok := t.pk.Lookup(rec.Key)
		if !ok {
			return nil
		}
		if t.rel.Delete(tid) {
			t.pk.Delete(rec.Key)
			st.noteChunk(tid.Chunk, rec.LSN)
		}
	default:
		return fmt.Errorf("wal: unknown op %d", rec.Op)
	}
	return nil
}

// wakeCompactor nudges the background compactor without blocking the
// write path; a pending wake-up is enough.
func (t *Table) wakeCompactor() {
	if t.freezeWake == nil {
		return
	}
	select {
	case t.freezeWake <- struct{}{}:
	default:
	}
}

// compact is the background compactor goroutine. It wakes whenever a hot
// chunk seals behind the insert tail — freezing the backlog once it
// reaches the configured threshold — and whenever freezing or a reload
// pushes the resident frozen set over the memory budget, evicting the
// coldest unpinned blocks to the store until the budget holds again.
// Compression, spill and reload all run outside the relation lock, so
// OLTP and OLAP traffic continue while it works.
func (t *Table) compact() {
	defer close(t.compactorDone)
	for {
		select {
		case <-t.stop:
			return
		case <-t.freezeWake:
		}
		if t.autoFreeze > 0 && t.rel.SealedHotChunks() >= t.autoFreeze {
			if err := t.rel.FreezeAll(core.FreezeOptions{SortBy: -1}, true); err != nil {
				t.noteCompactErr(err)
			} else if err := t.persistFrozen(); err != nil {
				// Durable tables checkpoint every background freeze, so a
				// crash loses at most the hot tail since the last pass.
				t.noteCompactErr(err)
			}
		}
		if t.memBudget > 0 {
			if _, err := t.rel.EvictUnderBudget(); err != nil {
				t.noteCompactErr(err)
			}
		}
	}
}

func (t *Table) noteCompactErr(err error) {
	t.compactMu.Lock()
	if t.compactErr == nil {
		t.compactErr = err
	}
	t.compactMu.Unlock()
}

// Close stops the table's background compactor, if any, waits for an
// in-flight freeze or eviction pass to finish, flushes every frozen block
// that was never spilled to the block store (so the store holds a
// complete cold copy of the frozen set) and releases the store. On a
// durable table (OpenPath / WithRecover) Close first freezes the hot tail
// and then writes a fresh manifest generation, so a clean close leaves
// the directory a complete image: reopening recovers exactly the closed
// contents. It returns the first error the compactor, the flush, the
// manifest write or a block reload encountered. Close also closes the
// stripe write-ahead logs: on a WAL table later writes fail at their
// group commit. Close is otherwise idempotent and the table remains
// readable afterwards — evicted chunks keep reloading through the store.
func (t *Table) Close() error {
	if t.autoFreeze > 0 || t.memBudget > 0 {
		t.closeOnce.Do(func() { close(t.stop) })
		<-t.compactorDone
	}
	if t.bs != nil {
		if t.persist {
			// Freeze the tail so the manifest covers every row. If the
			// freeze or the checkpoint fails, the error is reported — and
			// on a WAL table the stripe logs still hold every acknowledged
			// hot row (checkpoint truncates them only after a successful
			// manifest write), so a failed close loses nothing: reopening
			// replays the logs. Without a WAL a failed close genuinely
			// strands hot rows, which is why the error must not be
			// swallowed.
			if err := t.rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
				t.noteCompactErr(err)
			}
			if err := t.persistFrozen(); err != nil {
				t.noteCompactErr(err)
			}
		} else if err := t.rel.FlushFrozen(); err != nil {
			t.noteCompactErr(err)
		}
		for i := range t.stripes {
			if w := t.stripes[i].w; w != nil {
				if err := w.Close(); err != nil {
					t.noteCompactErr(err)
				}
			}
		}
		if err := t.bs.Close(); err != nil {
			t.noteCompactErr(err)
		}
	}
	if err := t.rel.LoadError(); err != nil {
		t.noteCompactErr(err)
	}
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	return t.compactErr
}

// Stats reports the table's memory footprint, split hot vs frozen vs
// evicted.
func (t *Table) Stats() MemStats { return t.rel.MemoryStats() }

// ColdStats reports the table's cold-store traffic: eviction and reload
// counts, RAM residency against the budget, and the on-disk footprint.
// All zero when the table has no block store.
func (t *Table) ColdStats() ColdStats { return t.rel.ColdStatsSnapshot() }

// Pred is a SARGable predicate referencing columns by name.
type Pred struct {
	Col    string
	Op     CompareOp
	Lo, Hi Value
}

// ScanPlan builds a scan over named columns with named predicates, for
// composition into larger plans. Predicate columns missing from the
// projection are scanned internally and trimmed away again, so the output
// schema is exactly cols.
func (t *Table) ScanPlan(cols []string, preds []Pred, filter Expr) (Node, error) {
	ords := make([]int, len(cols))
	for i, c := range cols {
		ords[i] = t.schema.ColumnIndex(c)
		if ords[i] < 0 {
			return nil, fmt.Errorf("datablocks: unknown column %q", c)
		}
	}
	cpreds := make([]core.Predicate, len(preds))
	extended := false
	for i, p := range preds {
		ord := t.schema.ColumnIndex(p.Col)
		if ord < 0 {
			return nil, fmt.Errorf("datablocks: unknown predicate column %q", p.Col)
		}
		cpreds[i] = core.Predicate{Col: ord, Op: p.Op, Lo: p.Lo, Hi: p.Hi}
		present := false
		for _, o := range ords {
			if o == ord {
				present = true
				break
			}
		}
		if !present {
			ords = append(ords, ord)
			extended = true
		}
	}
	scan := &exec.ScanNode{Rel: t.rel, Cols: ords, Preds: cpreds, Filter: filter}
	if !extended {
		return scan, nil
	}
	trim := make([]Expr, len(cols))
	for i := range cols {
		trim[i] = exec.Col(i)
	}
	return &exec.MapNode{Child: scan, Exprs: trim}, nil
}

// Scan runs a predicate scan and materializes the projected columns.
func (t *Table) Scan(cols []string, preds []Pred, opt QueryOptions) (*Result, error) {
	plan, err := t.ScanPlan(cols, preds, nil)
	if err != nil {
		return nil, err
	}
	res, err := exec.Run(plan, t.applyDefaults(opt))
	if err != nil {
		return nil, err
	}
	t.ops.scans.Inc()
	t.ops.rowsRead.Add(uint64(res.NumRows()))
	return res, nil
}

// Query executes an arbitrary physical plan with the table's default
// options (morsel parallelism) applied where the caller left them unset.
// Use this instead of the package-level Query when the plan's driving scan
// belongs to this table and its WithParallelism default should take effect.
func (t *Table) Query(plan Node, opt QueryOptions) (*Result, error) {
	res, err := exec.Run(plan, t.applyDefaults(opt))
	if err != nil {
		return nil, err
	}
	t.ops.queries.Inc()
	t.ops.rowsRead.Add(uint64(res.NumRows()))
	return res, nil
}

// applyDefaults resolves the table-level query defaults: a zero
// Parallelism picks up WithParallelism (n <= 0 meaning all of GOMAXPROCS).
func (t *Table) applyDefaults(opt QueryOptions) QueryOptions {
	if opt.Parallelism == 0 && t.hasDefaultPar {
		if t.defaultPar > 0 {
			opt.Parallelism = t.defaultPar
		} else {
			opt.Parallelism = runtime.GOMAXPROCS(0)
		}
	}
	return opt
}

// Query executes an arbitrary physical plan.
func Query(plan Node, opt QueryOptions) (*Result, error) { return exec.Run(plan, opt) }
