package datablocks

import (
	"runtime"

	"datablocks/internal/simd"
	"datablocks/internal/storage"
)

// FreezeStats aliases the storage layer's freeze-pipeline telemetry:
// freeze counts and durations, bytes in/out and the per-compression-scheme
// breakdown.
type FreezeStats = storage.FreezeStats

// EpochStats aliases the storage layer's MVCC bookkeeping snapshot: write
// epoch, retired-row GC backlog, pending and born version rows.
type EpochStats = storage.EpochStats

// SchemeStats aliases the per-compression-scheme freeze breakdown.
type SchemeStats = storage.SchemeStats

// TableOps counts the table's API traffic. All counters are cumulative
// since table creation.
type TableOps struct {
	// Inserts/Updates/Deletes count successful write operations;
	// RowsWritten counts rows they appended (BulkLoad rows included).
	Inserts, Updates, Deletes uint64
	// Lookups counts primary-key point reads, LookupMisses the subset
	// that resolved no visible row.
	Lookups, LookupMisses uint64
	// Scans counts Table.Scan calls, Queries Table.Query plans; RowsRead
	// counts the rows they returned (plus lookup hits).
	Scans, Queries uint64
	RowsWritten    uint64
	RowsRead       uint64
}

// WalStats is the write-ahead-log section of a table's metrics, summed
// across its write stripes. All zero without WithWAL.
type WalStats struct {
	// Stripes is the table's write-stripe count (1 without
	// WithWriteStripes; reported even when the WAL is off).
	Stripes int
	// Records counts appended records, Batches group-commit flushes (one
	// file append + one fsync each) — Records/Batches is the achieved
	// commit group size. Bytes counts appended bytes including framing.
	Records, Batches, Bytes uint64
	// Replayed counts records recovery re-applied at open,
	// ReplaySkipped records it found already durable, TornTails recovery
	// scans that cut a torn suffix.
	Replayed, ReplaySkipped, TornTails uint64
}

// TableMetrics is one table's consistent telemetry snapshot: every section
// is read once, in one call, so phase-boundary comparisons (before/after a
// freeze, across a restart) do not interleave with concurrent work the way
// separate Stats()/ColdStats() reads can.
type TableMetrics struct {
	// Rows is the live row count.
	Rows int
	// Mem splits the footprint hot vs frozen vs evicted.
	Mem MemStats
	// Cold is the block-store traffic: evictions, reloads, single-flight
	// collapses, residency against the budget, disk footprint.
	Cold ColdStats
	// Freeze is the freeze pipeline: counts, durations, compression
	// ratio overall and per scheme.
	Freeze FreezeStats
	// Epoch is the MVCC side: write epoch and the retired/pending/born
	// version-row backlog awaiting sorted-freeze GC.
	Epoch EpochStats
	// IndexKeys/IndexPublishes describe the primary-key index: resident
	// keys and cumulative version-record installations. Zero without a
	// primary key.
	IndexKeys      int
	IndexPublishes uint64
	// Store is the raw block-store I/O ledger (zero without a store).
	Store StoreStats
	// Wal is the write-ahead-log and group-commit traffic (zero without
	// WithWAL, except Stripes).
	Wal WalStats
	// Ops is the table's API traffic.
	Ops TableOps
}

// HostInfo describes the execution environment the metrics were captured
// on: the detected CPU feature level, the core count, and which
// implementation (assembly or portable) each kernel family dispatched to.
// Embedding it in every snapshot keeps numbers from different hosts — or
// from the GODEBUG=cpu.avx2=off CI leg — interpretable side by side.
type HostInfo struct {
	CPUFeature string
	Cores      int
	Kernels    []simd.KernelDispatch
}

// Metrics is a whole-database snapshot, one entry per table.
type Metrics struct {
	Host   HostInfo
	Tables map[string]TableMetrics
}

// Metrics snapshots one table's full telemetry in a single call.
func (t *Table) Metrics() TableMetrics {
	m := TableMetrics{
		Rows:   t.rel.NumRows(),
		Mem:    t.rel.MemoryStats(),
		Cold:   t.rel.ColdStatsSnapshot(),
		Freeze: t.rel.FreezeStatsSnapshot(),
		Epoch:  t.rel.EpochStatsSnapshot(),
	}
	if t.pk != nil {
		m.IndexKeys = t.pk.Len()
		m.IndexPublishes = t.pk.Publishes()
	}
	if t.bs != nil {
		m.Store = t.bs.Stats()
	}
	w := &t.walStats
	m.Wal = WalStats{
		Stripes:       t.writeStripes,
		Records:       w.Records.Load(),
		Batches:       w.Batches.Load(),
		Bytes:         w.Bytes.Load(),
		Replayed:      w.Replayed.Load(),
		ReplaySkipped: w.ReplaySkipped.Load(),
		TornTails:     w.TornTails.Load(),
	}
	o := &t.ops
	m.Ops = TableOps{
		Inserts:      o.inserts.Load(),
		Updates:      o.updates.Load(),
		Deletes:      o.deletes.Load(),
		Lookups:      o.lookups.Load(),
		LookupMisses: o.lookupMisses.Load(),
		Scans:        o.scans.Load(),
		Queries:      o.queries.Load(),
		RowsWritten:  o.rowsWritten.Load(),
		RowsRead:     o.rowsRead.Load(),
	}
	return m
}

// Metrics snapshots every table. The table set is captured under the
// catalog lock; each table's snapshot is then taken without it.
func (db *DB) Metrics() Metrics {
	db.mu.RLock()
	tables := make(map[string]*Table, len(db.tables))
	for n, t := range db.tables {
		tables[n] = t
	}
	db.mu.RUnlock()
	m := Metrics{
		Host: HostInfo{
			CPUFeature: simd.CPUFeatureLevel(),
			Cores:      runtime.NumCPU(),
			Kernels:    simd.DispatchInfo(),
		},
		Tables: make(map[string]TableMetrics, len(tables)),
	}
	for n, t := range tables {
		m.Tables[n] = t.Metrics()
	}
	return m
}
