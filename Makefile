# Tier-1 verify plus the concurrency checks, one command each.
#
#   make ci          — everything the driver checks, in order
#   make lint        — the dbvet analyzer suite (lock, deadlock, nilness,
#                      atomic, pin, hotpath, hotpath-perf, errcheck,
#                      shadow contracts) over every package, test files
#                      included, incrementally cached in bin/dbvet-cache
#   make race        — full test suite under the race detector
#   make test-portable — full test suite with GODEBUG=cpu.avx2=off, so
#                      every simd kernel runs its pure-Go fallback
#   make stress      — the concurrent OLTP/OLAP stress tests (raced) plus
#                      the kill -9 WAL recovery stress (a victim process
#                      is SIGKILLed at random crash points and reopened
#                      asserting zero lost acknowledged writes)
#   make bench-evict — eviction/reload benchmarks, one iteration each
#   make bench-json  — full benchmark suite, one iteration each, as JSON
#                      events in BENCH_$(BENCH_PR).json (committed so future
#                      PRs can diff perf against this one), plus a
#                      DB.Metrics() snapshot in METRICS_$(BENCH_PR).json
#   make bench-smoke — one-iteration run of the consume-path and TPC-H
#                      benchmarks, so the suite can't bit-rot, plus the
#                      profiled Q1/Q6 report with instrumentation cost
#   make fuzz-short  — every fuzz target for FUZZTIME (default 60s) each
#   make examples    — build every example; run quickstart (incl. durable
#                      reopen) against a temp dir
#   make linkcheck   — verify local links in README/ARCHITECTURE/ROADMAP

GO ?= go
FUZZTIME ?= 60s
BENCH_PR ?= 10

.PHONY: all build test test-portable race vet lint lint-vet fmt-check stress bench-evict bench-json bench-smoke fuzz-short examples linkcheck ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The portable-dispatch leg: GODEBUG=cpu.avx2=off makes every simd kernel
# dispatch to its pure-Go implementation, so the fallback path the assembly
# shadows is itself tested end to end. The differential fuzz harness still
# exercises the AVX2 kernels directly on capable hardware (it dispatches on
# the CPU feature, not the GODEBUG override), so one leg covers both.
test-portable:
	GODEBUG=cpu.avx2=off $(GO) test ./...

race:
	$(GO) test -race ./...

# Baseline vet is the full standard suite (copylocks, lostcancel, …)
# plus an extended unusedresult list: the engine's pure kernels are
# added to the stock functions, so calling one as a statement — for a
# side effect it does not have — is flagged. nilness and the upstream
# shadow analyzer need golang.org/x/tools (SSA); shadow is covered by
# the in-tree dbvet analyzer instead (make lint), nilness stays gated
# on the dependency (see ARCHITECTURE.md, Enforced invariants).
UNUSED_FUNCS = errors.New,fmt.Errorf,fmt.Sprint,fmt.Sprintf,sort.Reverse,context.WithValue,context.WithCancel,context.WithDeadline,context.WithTimeout,datablocks/internal/simd.SumFloat64,datablocks/internal/simd.CountNotNull,datablocks/internal/simd.MinMaxInt64,datablocks/internal/simd.MinMaxFloat64,datablocks/internal/simd.Mix64,datablocks/internal/simd.HashStr,datablocks/internal/simd.BitmapGet,datablocks/internal/simd.BitmapWords,datablocks/internal/simd.AVX2Enabled,datablocks/internal/simd.CPUFeatureLevel,datablocks/internal/simd.DispatchInfo

vet:
	$(GO) vet -unusedresult.funcs='$(UNUSED_FUNCS)' ./...

# dbvet: the in-tree static-analysis suite (internal/analysis).
# Standalone mode loads the test-augmented package variants exactly as
# go vet does, so _test.go files are covered, and keeps a per-package
# result cache in bin/dbvet-cache keyed by tool hash, sources, export
# data and dependency facts — an unchanged tree re-lints in the time it
# takes to hash it. `go vet -vettool=bin/dbvet ./...` is the protocol
# form (same analyzers, same findings); lint-vet exercises it so the
# two modes cannot drift.
lint:
	@mkdir -p bin
	$(GO) build -o bin/dbvet ./cmd/dbvet
	./bin/dbvet ./...

lint-vet:
	@mkdir -p bin
	$(GO) build -o bin/dbvet ./cmd/dbvet
	$(GO) vet -vettool=bin/dbvet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

stress:
	$(GO) test -race -count=1 -run 'TestHybridStress|TestStorageStress|TestFreezeAllConcurrentInserts|TestUpdateLookupNoReadAnomaly|TestUpdateLookupStress|TestConcurrentEvictReloadStress|TestParallelBatchQueryUnderWrites|TestWALStripedWritersRace|TestWALGroupCommitCrashProperty' . ./internal/storage/
	$(GO) test -count=1 -run 'TestKillRecoveryStress' ./internal/experiments/

# One iteration is enough to exercise the evict→reload path on every PR;
# use -benchtime=10x locally for actual numbers.
bench-evict:
	$(GO) test -run '^$$' -bench=Evict -benchtime=1x ./...

# Machine-readable perf baseline: every paper benchmark, emitted as
# test2json events. Committed as BENCH_<PR>.json so the next PR can diff
# its numbers against this one. Three iterations per benchmark: shared
# 1-vCPU runners jitter one-shot numbers by ±20%, and averaging three
# keeps the committed baseline comparable run to run. Use -benchtime=10x
# locally when the absolute numbers matter more than the trajectory.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchtime=3x -count=1 -json . > BENCH_$(BENCH_PR).json
	$(GO) run ./cmd/dbrepro -coldrows 20000 metrics > METRICS_$(BENCH_PR).json

# Cheap CI guard: the consume-path (batch vs tuple) and TPC-H benchmark
# families must at least still run, and the Q1/Q6 profiles print with
# the cost of turning the instrumentation on.
# Note: go test splits -bench on '/' into per-level regexes, so the
# second level anchors Q1|Q6 for both families.
bench-smoke:
	$(GO) test -run '^$$' -bench='ConsumePath|Table2TPCH/(Q1|Q6)$$' -benchtime=1x .
	$(GO) run ./cmd/dbrepro -sf 0.02 -rounds 3 profile

# go test fuzzes one target per invocation: list each explicitly.
fuzz-short:
	$(GO) test -run '^$$' -fuzz=FuzzUnmarshalBlock -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz=FuzzFindKernels -fuzztime=$(FUZZTIME) ./internal/simd
	$(GO) test -run '^$$' -fuzz=FuzzReduceKernels -fuzztime=$(FUZZTIME) ./internal/simd

# Build every example and run quickstart end to end — it creates a durable
# database in a temp dir, closes it and reopens it, so the documented
# create → close → reopen flow is exercised on every CI run.
examples:
	$(GO) build ./examples/...
	@dir=$$(mktemp -d); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./examples/quickstart "$$dir"

linkcheck:
	$(GO) test -run TestMarkdownDocLinks .

ci: fmt-check vet lint build test test-portable race stress bench-evict bench-smoke fuzz-short examples linkcheck
