# Tier-1 verify plus the concurrency checks, one command each.
#
#   make ci        — everything the driver checks, in order
#   make race      — full test suite under the race detector
#   make stress    — just the concurrent OLTP/OLAP stress tests, raced

GO ?= go

.PHONY: all build test race vet fmt-check stress ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

stress:
	$(GO) test -race -count=1 -run 'TestHybridStress|TestStorageStress|TestFreezeAllConcurrentInserts|TestUpdateLookupNoReadAnomaly|TestUpdateLookupStress' . ./internal/storage/

ci: fmt-check vet build test race
