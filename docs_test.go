package datablocks

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links: [text](target).
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownDocLinks is the repo's link check (run by `make linkcheck`
// and therefore `make ci`): every local link in the user-facing documents
// must point at a file that exists. External links are only checked for a
// scheme, not fetched — CI must not depend on the network.
func TestMarkdownDocLinks(t *testing.T) {
	docs := []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md"}
	for _, doc := range docs {
		buf, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("required document missing: %v", err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(buf), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			// Drop an intra-document anchor; a bare anchor targets doc
			// itself and needs no file check.
			path := target
			if i := strings.IndexByte(path, '#'); i >= 0 {
				path = path[:i]
			}
			if path == "" {
				continue
			}
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, target, err)
			}
		}
	}
}
