package datablocks

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// durableOpts are the runtime options the durable tests reopen with; the
// structural options (schema, PK, chunk size) come back from the catalog.
func durableOpts() []TableOption {
	return []TableOption{WithAutoFreeze(1), WithMemoryBudget(32 << 10), WithChunkRows(512)}
}

func mustCreateEvents(t *testing.T, db *DB) *Table {
	t.Helper()
	tbl, err := db.CreateTable("events", []Column{
		{Name: "id", Kind: Int64},
		{Name: "amount", Kind: Float64},
		{Name: "status", Kind: String},
	}, WithPrimaryKey("id"))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func loadEvents(t *testing.T, tbl *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Float(float64(i) / 2), Str("new")}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableReopen is the create → close → reopen → query regression:
// aggregates, point lookups, deletes and the last committed update must
// survive the restart exactly.
func TestDurableReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	const n = 5000
	loadEvents(t, tbl, n)
	for i := 0; i < n; i += 13 {
		if ok, derr := tbl.Delete(int64(i)); derr != nil || !ok {
			t.Fatalf("delete %d failed: %v %v", i, ok, derr)
		}
	}
	if err = tbl.Update(5, Row{Int(5), Float(99), Str("updated")}); err != nil {
		t.Fatal(err)
	}
	wantRows := tbl.NumRows()
	if err = db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenPath(dir, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	if tbl2 == nil {
		t.Fatalf("table not recovered; catalog lists %v", db2.Tables())
	}
	if got := tbl2.NumRows(); got != wantRows {
		t.Fatalf("recovered %d rows, want %d", got, wantRows)
	}
	if tbl2.Schema().ColumnIndex("status") != 2 {
		t.Fatal("schema not recovered from catalog")
	}
	if row, ok := tbl2.Lookup(5); !ok || row[1].Float() != 99 || row[2].Str() != "updated" {
		t.Fatalf("updated row lost: %v, %v", row, ok)
	}
	if _, ok := tbl2.Lookup(13); ok {
		t.Fatal("deleted key 13 resurrected")
	}
	res, err := tbl2.Scan([]string{"id"}, []Pred{{Col: "id", Op: Ge, Lo: Int(0)}}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != wantRows {
		t.Fatalf("scan found %d rows, want %d", res.NumRows(), wantRows)
	}
	// The reopened table keeps working as a normal table: inserts land in
	// a fresh hot tail and are visible immediately.
	if _, err := tbl2.Insert(Row{Int(n + 1), Float(1), Str("post")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl2.Lookup(n + 1); !ok {
		t.Fatal("post-reopen insert not visible")
	}
}

// chopFile truncates path to frac of its size, simulating a torn write.
func chopFile(t *testing.T, path string, frac float64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(float64(info.Size())*frac)); err != nil {
		t.Fatal(err)
	}
}

// newestFile returns the lexically greatest path matching the pattern —
// for generation-stamped records (fixed-width hex) that is the newest
// generation.
func newestFile(t *testing.T, pattern string) string {
	t.Helper()
	matches, err := filepath.Glob(pattern)
	if err != nil || len(matches) == 0 {
		t.Fatalf("no files match %s (err %v)", pattern, err)
	}
	newest := matches[0]
	for _, m := range matches[1:] {
		if m > newest {
			newest = m
		}
	}
	return newest
}

// TestTornManifestRecoversPreviousGeneration: two closes produce two
// manifest generations; chopping the newest one mid-file must reopen to
// the first close's contents — never a half state, never an error.
func TestTornManifestRecoversPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	loadEvents(t, tbl, 2000)
	if err = db.Close(); err != nil {
		t.Fatal(err)
	}

	// Session two adds more rows and closes again (a newer generation).
	// No auto-freeze here: background freezes checkpoint intermediate
	// manifest generations, and this test needs "previous generation" to
	// mean exactly the first close.
	db2, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl2 := db2.Table("events")
	rowsAtFirstClose := tbl2.NumRows()
	for i := 0; i < 1000; i++ {
		if _, err = tbl2.Insert(Row{Int(int64(100_000 + i)), Float(1), Str("late")}); err != nil {
			t.Fatal(err)
		}
	}
	if err = db2.Close(); err != nil {
		t.Fatal(err)
	}

	chopFile(t, newestFile(t, filepath.Join(dir, "events", "manifest-*.dbm")), 0.5)

	db3, err := OpenPath(dir)
	if err != nil {
		t.Fatalf("reopen after torn manifest: %v", err)
	}
	defer db3.Close()
	tbl3 := db3.Table("events")
	if tbl3 == nil {
		t.Fatal("table lost after torn manifest")
	}
	if got := tbl3.NumRows(); got != rowsAtFirstClose {
		t.Fatalf("recovered %d rows, want the previous generation's %d", got, rowsAtFirstClose)
	}
	if _, ok := tbl3.Lookup(100_000); ok {
		t.Fatal("row from the torn generation leaked into the recovery")
	}
	if row, ok := tbl3.Lookup(42); !ok || row[0].Int() != 42 {
		t.Fatalf("previous generation's row lost: %v, %v", row, ok)
	}
}

// TestTornCatalogRecoversPreviousGeneration: creating a second table
// writes a newer catalog generation; chopping it must fall back to the
// generation that knew only the first table.
func TestTornCatalogRecoversPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	tblA := mustCreateEvents(t, db)
	loadEvents(t, tblA, 600)
	if err = tblA.FreezeAll(); err != nil {
		t.Fatal(err)
	}
	if _, err = db.CreateTable("second", []Column{{Name: "v", Kind: Int64}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash right after the second create: no Close, chop the
	// newest catalog generation (the one listing both tables).
	chopFile(t, newestFile(t, filepath.Join(dir, "catalog-*.dbc")), 0.3)

	db2, err := OpenPath(dir)
	if err != nil {
		t.Fatalf("reopen after torn catalog: %v", err)
	}
	defer db2.Close()
	if got := db2.Tables(); len(got) != 1 || got[0] != "events" {
		t.Fatalf("want the previous generation's table set [events], got %v", got)
	}
	if got := db2.Table("events").NumRows(); got != 600 {
		t.Fatalf("recovered %d rows, want 600", got)
	}
}

// TestAllManifestsCorruptRefusesAndKeepsBlocks: when every manifest
// generation of a table is corrupt, reopen must fail — and must not
// garbage-collect the (intact, self-checksummed) block files as
// unreferenced, so the data stays salvageable.
func TestAllManifestsCorruptRefusesAndKeepsBlocks(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	loadEvents(t, tbl, 2000)
	if err = db.Close(); err != nil {
		t.Fatal(err)
	}
	manifests, err := filepath.Glob(filepath.Join(dir, "events", "manifest-*.dbm"))
	if err != nil || len(manifests) == 0 {
		t.Fatalf("no manifests after close (err %v)", err)
	}
	for _, m := range manifests {
		if err := os.Truncate(m, 9); err != nil {
			t.Fatal(err)
		}
	}
	blocksBefore, _ := filepath.Glob(filepath.Join(dir, "events", "*.dblk"))
	if _, err := OpenPath(dir, durableOpts()...); err == nil {
		t.Fatal("reopen with all manifests corrupt succeeded")
	}
	blocksAfter, _ := filepath.Glob(filepath.Join(dir, "events", "*.dblk"))
	if len(blocksAfter) != len(blocksBefore) || len(blocksAfter) == 0 {
		t.Fatalf("block files not preserved for salvage: %d before, %d after", len(blocksBefore), len(blocksAfter))
	}
}

// TestRecoveredTableIgnoresPrimaryKeyDefault: a DB-wide WithPrimaryKey
// default must not graft an index onto a recovered table that was created
// without one — the catalog's structural record wins.
func TestRecoveredTableIgnoresPrimaryKeyDefault(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	// "v" holds duplicate values: a spurious PK rebuild over it would fail.
	tbl, err := db.CreateTable("nopk", []Column{{Name: "v", Kind: Int64}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err = tbl.Insert(Row{Int(int64(i % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	if err = db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenPath(dir, WithPrimaryKey("v"))
	if err != nil {
		t.Fatalf("reopen with a PK default grafted an index onto a PK-less table: %v", err)
	}
	defer db2.Close()
	if got := db2.Table("nopk").NumRows(); got != 100 {
		t.Fatalf("recovered %d rows, want 100", got)
	}
	if _, ok := db2.Table("nopk").Lookup(1); ok {
		t.Fatal("recovered PK-less table answered an indexed lookup")
	}
}

// TestCorruptBlockSurfacesLoadError: a bit flipped in a stored block must
// make reopen fail with a checksum error — wrong results are never an
// option. (The PK index rebuild streams every block at reopen, so the
// corruption is caught before the first query.)
func TestCorruptBlockSurfacesLoadError(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, durableOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	loadEvents(t, tbl, 2000)
	if err = db.Close(); err != nil {
		t.Fatal(err)
	}
	victim := newestFile(t, filepath.Join(dir, "events", "*.dblk"))
	buf, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err = os.WriteFile(victim, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenPath(dir, durableOpts()...)
	if err == nil {
		t.Fatal("reopen with a corrupt block succeeded")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not reported as a checksum failure: %v", err)
	}
}

// TestDBCloseRemovesUnpersistedStore: a table whose block store is a pure
// spill cache (Open + WithBlockStore, no WithRecover) must leave no block
// files behind after DB.Close — and must stay fully readable, because the
// evicted blocks are reloaded into RAM before the files go away.
func TestDBCloseRemovesUnpersistedStore(t *testing.T) {
	root := t.TempDir()
	db := Open(WithBlockStore(root), WithMemoryBudget(8<<10), WithAutoFreeze(1), WithChunkRows(512))
	tbl := mustCreateEvents(t, db)
	loadEvents(t, tbl, 4000)
	if err := tbl.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	blocks, err := filepath.Glob(filepath.Join(root, "events", "*.dblk"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 0 {
		t.Fatalf("%d spill-cache block files survived DB.Close", len(blocks))
	}
	if st := tbl.Stats(); st.EvictedChunks != 0 {
		t.Fatalf("%d chunks still evicted after the spill cache was dropped", st.EvictedChunks)
	}
	// The table remains answerable from RAM.
	if row, ok := tbl.Lookup(123); !ok || row[0].Int() != 123 {
		t.Fatalf("lookup after close = %v, %v", row, ok)
	}
	res, err := tbl.Scan([]string{"id"}, nil, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != tbl.NumRows() {
		t.Fatalf("scan after close found %d of %d rows", res.NumRows(), tbl.NumRows())
	}
}

// TestWithRecoverStandalone: table-level durability without a database
// catalog — WithBlockStore + WithRecover recovers the frozen set from the
// directory's manifest, with the schema supplied by the caller.
func TestWithRecoverStandalone(t *testing.T) {
	root := t.TempDir()
	mk := func() (*DB, *Table) {
		db := Open()
		tbl, err := db.CreateTable("kv", []Column{
			{Name: "k", Kind: Int64},
			{Name: "v", Kind: String},
		}, WithPrimaryKey("k"), WithChunkRows(256), WithBlockStore(root), WithRecover())
		if err != nil {
			t.Fatal(err)
		}
		return db, tbl
	}
	db, tbl := mk()
	for i := 0; i < 1000; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Str("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, tbl2 := mk()
	defer db2.Close()
	if got := tbl2.NumRows(); got != 1000 {
		t.Fatalf("recovered %d rows, want 1000", got)
	}
	if row, ok := tbl2.Lookup(999); !ok || row[1].Str() != "v" {
		t.Fatalf("lookup(999) = %v, %v", row, ok)
	}
}
