package datablocks_test

// Kernel-layer microbenchmarks: per-kernel throughput with b.SetBytes so
// `go test -bench Kernels -benchtime 100x` reports MB/s per kernel, plus a
// grouped-aggregation macrobenchmark over the open-addressing group table.
// BenchmarkKernelInfo logs the host's CPU feature level, core count and
// per-kernel dispatch decisions into the bench JSON, so numbers from
// different hosts (or the GODEBUG=cpu.avx2=off CI leg) stay interpretable.

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"testing"

	"datablocks/internal/core"
	"datablocks/internal/exec"
	"datablocks/internal/simd"
	"datablocks/internal/storage"
	"datablocks/internal/types"
	"datablocks/internal/xrand"
)

// Benchmark sinks: results flow somewhere the compiler cannot prove dead,
// so the measured kernel calls are not eliminated.
var (
	sinkF64  float64
	sinkI64  int64
	sinkBool bool
)

// BenchmarkKernelInfo records the dispatch environment in the benchmark
// JSON stream (it measures nothing).
func BenchmarkKernelInfo(b *testing.B) {
	doc, err := json.Marshal(struct {
		CPUFeature string                `json:"cpu_feature"`
		Cores      int                   `json:"cores"`
		Kernels    []simd.KernelDispatch `json:"kernels"`
	}{simd.CPUFeatureLevel(), runtime.NumCPU(), simd.DispatchInfo()})
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("dispatch: %s", doc)
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkKernels measures each dispatched kernel family in isolation.
// SetBytes counts the bytes of column data each call inspects.
func BenchmarkKernels(b *testing.B) {
	const n = 1 << 16
	r := xrand.New(7)

	for _, width := range []int{1, 2, 4, 8} {
		data := make([]byte, n*width+8)
		for i := 0; i < n; i++ {
			simd.WriteUint(data, i, width, r.Uint64()%100)
		}
		b.Run(fmt.Sprintf("find/w%d", 8*width), func(b *testing.B) {
			b.SetBytes(int64(n * width))
			var out []uint32
			for i := 0; i < b.N; i++ {
				out = simd.Find(data, width, n, simd.OpBetween, 10, 34, 0, out[:0])
			}
		})
		matches := simd.Find(data, width, n, simd.OpLt, 50, 0, 0, nil)
		scratch := make([]uint32, len(matches))
		b.Run(fmt.Sprintf("reduce/w%d", 8*width), func(b *testing.B) {
			b.SetBytes(int64(len(matches) * width))
			for i := 0; i < b.N; i++ {
				copy(scratch, matches)
				simd.Reduce(data, width, simd.OpLt, 25, 0, scratch[:len(matches)])
			}
		})
	}

	ints := make([]int64, n)
	floats := make([]float64, n)
	nulls := make([]bool, n)
	bm := make([]uint64, simd.BitmapWords(n))
	for i := 0; i < n; i++ {
		ints[i] = int64(r.Uint64()%2000) - 1000
		floats[i] = float64(ints[i]) / 3
		nulls[i] = r.Uint64()%10 == 0
		if r.Uint64()%2 == 0 {
			simd.BitmapSet(bm, uint32(i))
		}
	}

	b.Run("find/int64", func(b *testing.B) {
		b.SetBytes(8 * n)
		var out []uint32
		for i := 0; i < b.N; i++ {
			out = simd.FindInt64(ints, simd.OpBetween, -250, 250, 0, out[:0])
		}
	})
	b.Run("find/bitmap", func(b *testing.B) {
		b.SetBytes(n / 8)
		var out []uint32
		for i := 0; i < b.N; i++ {
			out = simd.FindBitmap(bm, n, true, 0, out[:0])
		}
	})

	b.Run("agg/sum_f64_dense", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			acc, _ := simd.SumFloat64(0, floats, nil)
			if math.IsNaN(acc) {
				b.Fatal("nan")
			}
		}
	})
	b.Run("agg/sum_f64_masked", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			acc, cnt := simd.SumFloat64(0, floats, nulls)
			sinkF64, sinkI64 = acc, cnt
		}
	})
	b.Run("agg/minmax_i64", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			mn, mx, any := simd.MinMaxInt64(ints, nil)
			sinkI64, sinkBool = mn^mx, any
		}
	})
	b.Run("agg/minmax_f64", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			mn, mx, any := simd.MinMaxFloat64(floats, nil)
			sinkF64, sinkBool = mn+mx, any
		}
	})

	hs := make([]uint64, n)
	b.Run("hash/mix64_i64", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			simd.HashInt64(ints, hs)
		}
	})
	b.Run("hash/mix64_f64", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			simd.HashFloat64(floats, hs)
		}
	})
	b.Run("hash/combine_i64", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			simd.HashCombineInt64(hs, ints)
		}
	})
}

// BenchmarkGroupedAgg drives the full vectorized grouped-aggregation path
// (hash kernels + open-addressing group table) across group cardinalities.
func BenchmarkGroupedAgg(b *testing.B) {
	const n = 1 << 17
	for _, groups := range []int{16, 1024, 65536} {
		r := xrand.New(11)
		cols := []core.ColumnData{
			{Kind: types.Int64, Ints: make([]int64, n)},
			{Kind: types.Float64, Floats: make([]float64, n)},
			{Kind: types.Int64, Ints: make([]int64, n)},
		}
		distinct := map[int64]bool{}
		for i := 0; i < n; i++ {
			cols[0].Ints[i] = int64(r.Uint64() % uint64(groups))
			cols[1].Floats[i] = float64(r.Uint64()%10000) / 100
			cols[2].Ints[i] = int64(r.Uint64() % 1000)
			distinct[cols[0].Ints[i]] = true
		}
		schema := types.NewSchema(
			types.Column{Name: "g", Kind: types.Int64},
			types.Column{Name: "v", Kind: types.Float64},
			types.Column{Name: "q", Kind: types.Int64},
		)
		rel := storage.NewRelation(schema, 1<<14)
		if err := rel.BulkAppend(cols, n); err != nil {
			b.Fatal(err)
		}
		plan := &exec.AggNode{
			Child:   &exec.ScanNode{Rel: rel, Cols: []int{0, 1, 2}},
			GroupBy: []int{0},
			Aggs: []exec.AggSpec{
				{Func: exec.AggSum, Arg: exec.Col(1)},
				{Func: exec.AggMin, Arg: exec.Col(2)},
				{Func: exec.AggCount},
			},
		}
		b.Run(fmt.Sprintf("groups%d", groups), func(b *testing.B) {
			b.SetBytes(3 * 8 * n)
			for i := 0; i < b.N; i++ {
				res, err := exec.Run(plan, exec.Options{Mode: exec.ModeVectorizedSARG})
				if err != nil {
					b.Fatal(err)
				}
				if res.NumRows() != len(distinct) {
					b.Fatalf("groups = %d want %d", res.NumRows(), len(distinct))
				}
			}
		})
	}
}
