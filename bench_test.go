package datablocks_test

// One benchmark family per table and figure of the paper's evaluation.
// Run with: go test -bench=. -benchmem
//
//	BenchmarkTable1Compression  — Table 1: freeze throughput + sizes
//	BenchmarkTable2TPCH         — Table 2/4: query runtimes per scan type
//	BenchmarkTable3PointAccess  — Table 3: point-lookup paths
//	BenchmarkTPCC               — §5.3: transaction throughput
//	BenchmarkFig5CompileTime    — Figure 5: code-path explosion
//	BenchmarkFig8FindMatches    — Figure 8: find-initial-matches kernels
//	BenchmarkFig9ReduceMatches  — Figure 9: reduce-matches kernels
//	BenchmarkFig10BlockSize     — Figure 10: compression vs block size
//	BenchmarkFig11SortedQ6      — Figure 11: Q6 on sorted blocks
//	BenchmarkFig12aSARG         — Figure 12a: SARG on packed vs byte codes
//	BenchmarkFig12bUnpack       — Figure 12b: unpack matches
//	BenchmarkFig13VectorSize    — Figure 13: vector-size sweep
//	BenchmarkFlightsQuery       — Appendix D: SMA/PSMA block skipping

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"datablocks"

	"datablocks/internal/bitpack"
	"datablocks/internal/compress"
	"datablocks/internal/core"
	"datablocks/internal/datasets"
	"datablocks/internal/exec"
	"datablocks/internal/experiments"
	"datablocks/internal/index"
	"datablocks/internal/simd"
	"datablocks/internal/storage"
	"datablocks/internal/tpcc"
	"datablocks/internal/tpch"
	"datablocks/internal/types"
	"datablocks/internal/xrand"
)

const benchSF = 0.01 // ~15000 orders / ~60000 lineitems

var (
	benchOnce sync.Once
	benchHot  *tpch.DB
	benchCold *tpch.DB
	benchSort *tpch.DB
)

func benchDBs(b *testing.B) (hot, cold, sorted *tpch.DB) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		if benchHot, err = tpch.Generate(benchSF, 0); err != nil {
			panic(err)
		}
		if benchCold, err = tpch.Generate(benchSF, 0); err != nil {
			panic(err)
		}
		if err = benchCold.FreezeAll(false, false); err != nil {
			panic(err)
		}
		if benchSort, err = tpch.Generate(benchSF, 0); err != nil {
			panic(err)
		}
		if err = benchSort.FreezeAll(true, false); err != nil {
			panic(err)
		}
	})
	return benchHot, benchCold, benchSort
}

// BenchmarkTable1Compression measures freezing a 2^16-row lineitem-shaped
// chunk into a Data Block (the operation whose output sizes Table 1
// reports) and records the achieved compression ratio.
func BenchmarkTable1Compression(b *testing.B) {
	hot, _, _ := benchDBs(b)
	cols, n := experiments.RelationColumns(hot.Lineitem)
	if n > core.MaxRows {
		n = core.MaxRows
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := core.Freeze(truncate(cols, n), n, core.FreezeOptions{SortBy: -1})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(blk.UncompressedSize()) / float64(blk.CompressedSize())
	}
	b.ReportMetric(ratio, "compression-ratio")
	b.ReportMetric(float64(n), "rows/block")
}

func truncate(cols []core.ColumnData, n int) []core.ColumnData {
	out := make([]core.ColumnData, len(cols))
	for i, c := range cols {
		out[i] = c
		if c.Ints != nil {
			out[i].Ints = c.Ints[:n]
		}
		if c.Floats != nil {
			out[i].Floats = c.Floats[:n]
		}
		if c.Strs != nil {
			out[i].Strs = c.Strs[:n]
		}
		if c.Nulls != nil {
			out[i].Nulls = c.Nulls[:n]
		}
	}
	return out
}

// BenchmarkTable2TPCH runs each supported TPC-H query under every Table 2
// scan configuration.
func BenchmarkTable2TPCH(b *testing.B) {
	hot, cold, _ := benchDBs(b)
	for _, q := range tpch.SupportedQueries {
		for _, cfg := range experiments.Table2Configs {
			db := hot
			if cfg.Frozen {
				db = cold
			}
			b.Run(fmt.Sprintf("Q%d/%s", q, cfg.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(q, exec.Options{Mode: cfg.Mode}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3PointAccess measures the point-lookup paths of Table 3.
func BenchmarkTable3PointAccess(b *testing.B) {
	hot, cold, _ := benchDBs(b)
	n := hot.Customer.NumRows()
	mkIndex := func(rel *storage.Relation) *index.Hash {
		pk := index.NewHash(n)
		if err := pk.Rebuild(rel, 0); err != nil {
			b.Fatal(err)
		}
		return pk
	}
	hotIdx, coldIdx := mkIndex(hot.Customer), mkIndex(cold.Customer)
	r := xrand.New(1)
	b.Run("index/uncompressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tid, _ := hotIdx.Lookup(r.Range(1, int64(n)))
			if _, ok := hot.Customer.Get(tid); !ok {
				b.Fatal("missing")
			}
		}
	})
	b.Run("index/datablocks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tid, _ := coldIdx.Lookup(r.Range(1, int64(n)))
			if _, ok := cold.Customer.Get(tid); !ok {
				b.Fatal("missing")
			}
		}
	})
	cols := make([]int, hot.Customer.Schema().NumColumns())
	for i := range cols {
		cols[i] = i
	}
	scan := func(rel *storage.Relation, mode exec.ScanMode) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := &exec.ScanNode{Rel: rel, Cols: cols, Preds: []core.Predicate{
					{Col: 0, Op: types.Eq, Lo: types.IntValue(r.Range(1, int64(n)))},
				}}
				res, err := exec.Run(plan, exec.Options{Mode: mode})
				if err != nil || res.NumRows() != 1 {
					b.Fatalf("rows=%d err=%v", res.NumRows(), err)
				}
			}
		}
	}
	b.Run("scan/uncompressed-jit", scan(hot.Customer, exec.ModeJIT))
	b.Run("scan/uncompressed-vectorized", scan(hot.Customer, exec.ModeVectorizedSARG))
	b.Run("scan/datablocks", scan(cold.Customer, exec.ModeVectorizedSARG))
	b.Run("scan/datablocks-psma", scan(cold.Customer, exec.ModeVectorizedSARGPSMA))
}

// BenchmarkTPCC measures the §5.3 transaction paths.
func BenchmarkTPCC(b *testing.B) {
	newDB := func(b *testing.B) *tpcc.DB {
		db, err := tpcc.New(tpcc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("neworder/uncompressed", func(b *testing.B) {
		db := newDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.NewOrderTx(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("neworder/cold-frozen", func(b *testing.B) {
		db := newDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.NewOrderTx(); err != nil {
				b.Fatal(err)
			}
			if i%2000 == 1999 {
				if err := db.FreezeNewOrderCold(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, frozen := range []bool{false, true} {
		name := "readonly/uncompressed"
		if frozen {
			name = "readonly/frozen"
		}
		b.Run(name, func(b *testing.B) {
			db := newDB(b)
			for i := 0; i < 3000; i++ {
				if err := db.NewOrderTx(); err != nil {
					b.Fatal(err)
				}
			}
			if frozen {
				if err := db.FreezeAll(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					if _, err := db.OrderStatusTx(); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := db.StockLevelTx(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig5CompileTime isolates query compilation cost as the number
// of storage-layout combinations grows.
func BenchmarkFig5CompileTime(b *testing.B) {
	for _, combos := range []int{1, 16, 256, 1024} {
		rel, err := experiments.LayoutRelation(combos)
		if err != nil {
			b.Fatal(err)
		}
		cols := make([]int, 8)
		for i := range cols {
			cols[i] = i
		}
		plan := &exec.ScanNode{Rel: rel, Cols: cols}
		b.Run(fmt.Sprintf("layouts=%d/jit", combos), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.CompileOnly(plan, exec.Options{Mode: exec.ModeJIT}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("layouts=%d/vectorized", combos), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.CompileOnly(plan, exec.Options{Mode: exec.ModeVectorized}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8FindMatches measures the find-initial-matches kernels per
// lane width, scalar vs SWAR, at 20% selectivity.
func BenchmarkFig8FindMatches(b *testing.B) {
	const n = 1 << 14
	for _, width := range []int{1, 2, 4, 8} {
		r := xrand.New(3)
		data := make([]byte, n*width+8)
		for i := 0; i < n; i++ {
			simd.WriteUint(data, i, width, r.Uint64()%100)
		}
		out := make([]uint32, 0, n+8)
		b.Run(fmt.Sprintf("w%d/scalar", 8*width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = simd.FindScalar(data, width, n, simd.OpBetween, 10, 29, 0, out[:0])
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
		})
		b.Run(fmt.Sprintf("w%d/swar", 8*width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = simd.Find(data, width, n, simd.OpBetween, 10, 29, 0, out[:0])
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/elem")
		})
	}
}

// BenchmarkFig9ReduceMatches measures the reduce-matches kernels across
// first-predicate selectivities (second predicate fixed at 40%).
func BenchmarkFig9ReduceMatches(b *testing.B) {
	const n = 1 << 14
	for _, width := range []int{1, 4} {
		r := xrand.New(4)
		data := make([]byte, n*width+8)
		for i := 0; i < n; i++ {
			simd.WriteUint(data, i, width, r.Uint64()%200)
		}
		for _, sel := range []int{10, 50, 100} {
			matches := simd.Find(data, width, n, simd.OpLt, uint64(2*sel), 0, 0, nil)
			scratch := make([]uint32, len(matches))
			b.Run(fmt.Sprintf("w%d/sel%d/scalar", 8*width, sel), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					copy(scratch, matches)
					simd.ReduceScalar(data, width, simd.OpLt, 80, 0, scratch[:len(matches)])
				}
			})
			b.Run(fmt.Sprintf("w%d/sel%d/swar", 8*width, sel), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					copy(scratch, matches)
					simd.Reduce(data, width, simd.OpLt, 80, 0, scratch[:len(matches)])
				}
			})
		}
	}
}

// BenchmarkFig10BlockSize measures freeze + size across block sizes.
func BenchmarkFig10BlockSize(b *testing.B) {
	hot, _, _ := benchDBs(b)
	cols, n := experiments.RelationColumns(hot.Lineitem)
	for _, size := range []int{2048, 8192, 65536} {
		b.Run(fmt.Sprintf("block=%d", size), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				rel, err := experiments.CloneRelation(hot.Lineitem.Schema(), cols, n, size, true)
				if err != nil {
					b.Fatal(err)
				}
				st := rel.MemoryStats()
				ratio = float64(experiments.UncompressedBytes(cols, n)) / float64(st.FrozenBytes)
			}
			b.ReportMetric(ratio, "compression-ratio")
		})
	}
}

// BenchmarkFig11SortedQ6 measures Q6 under the Figure 11 configurations.
func BenchmarkFig11SortedQ6(b *testing.B) {
	hot, cold, sorted := benchDBs(b)
	cfgs := []struct {
		name string
		db   *tpch.DB
		mode exec.ScanMode
	}{
		{"jit", hot, exec.ModeJIT},
		{"vec", hot, exec.ModeVectorized},
		{"datablocks+psma", cold, exec.ModeVectorizedSARGPSMA},
		{"sorted+psma", sorted, exec.ModeVectorizedSARGPSMA},
	}
	for _, cfg := range cfgs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfg.db.Query(6, exec.Options{Mode: cfg.mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12aSARG measures predicate evaluation on byte-aligned codes
// vs horizontal bit-packing.
func BenchmarkFig12aSARG(b *testing.B) {
	d, err := experiments.NewFig12Data()
	if err != nil {
		b.Fatal(err)
	}
	n := d.N
	bm := make([]uint64, (n+63)/64)
	out := make([]uint32, 0, n+8)
	for _, sel := range []int{10, 50, 100} {
		hi := uint64(1<<16) * uint64(sel) / 100
		tr := d.ACodes.TranslateRange(0, int64(hi))
		b.Run(fmt.Sprintf("sel%d/datablocks", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tr.Verdict == compress.Range {
					out = simd.Find(d.ACodes.Data, d.ACodes.Width, n, simd.OpBetween, tr.C1, tr.C2, 0, out[:0])
				}
			}
		})
		b.Run(fmt.Sprintf("sel%d/bitpack-branchy", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.APacked.FindBetweenBitmap(0, uint32(hi), bm)
				out = simd.PositionsFromBitmapBranchy(bm, n, 0, out[:0])
			}
		})
		b.Run(fmt.Sprintf("sel%d/bitpack-table", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.APacked.FindBetweenBitmap(0, uint32(hi), bm)
				out = simd.PositionsFromBitmap(bm, n, 0, out[:0])
			}
		})
	}
}

// BenchmarkFig12bUnpack measures unpacking three attributes at the matched
// positions.
func BenchmarkFig12bUnpack(b *testing.B) {
	d, err := experiments.NewFig12Data()
	if err != nil {
		b.Fatal(err)
	}
	n := d.N
	outI := make([]int64, n)
	outU := make([]uint32, n)
	full := make([]uint32, n)
	for _, sel := range []int{1, 20, 100} {
		hi := uint64(1<<16) * uint64(sel) / 100
		if hi == 0 {
			hi = 650
		}
		var matches []uint32
		if tr := d.ACodes.TranslateRange(0, int64(hi)); tr.Verdict == compress.All {
			matches = simd.Sequence(nil, n, 0)
		} else {
			matches = simd.Find(d.ACodes.Data, d.ACodes.Width, n, simd.OpBetween, tr.C1, tr.C2, 0, nil)
		}
		b.Run(fmt.Sprintf("sel%d/datablocks", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.ACodes.Gather(matches, outI[:len(matches)])
				d.BCodes.Gather(matches, outI[:len(matches)])
				d.CCodes.Gather(matches, outI[:len(matches)])
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(matches)), "ns/match")
		})
		b.Run(fmt.Sprintf("sel%d/bitpack-positional", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.APacked.GatherPositions(matches, outU[:len(matches)])
				d.BPacked.GatherPositions(matches, outU[:len(matches)])
				d.CPacked.GatherPositions(matches, outU[:len(matches)])
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(matches)), "ns/match")
		})
		b.Run(fmt.Sprintf("sel%d/bitpack-unpackall", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, v := range []*bitpack.Vector{d.APacked, d.BPacked, d.CPacked} {
					v.UnpackAll(full)
					for j, p := range matches {
						outU[j] = full[p]
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(matches)), "ns/match")
		})
	}
}

// BenchmarkFig13VectorSize sweeps the scan vector size over Q6.
func BenchmarkFig13VectorSize(b *testing.B) {
	_, cold, _ := benchDBs(b)
	for _, vs := range []int{256, 2048, 8192, 65536} {
		b.Run(fmt.Sprintf("vec=%d", vs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cold.Query(6, exec.Options{Mode: exec.ModeVectorizedSARGPSMA, VectorSize: vs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlightsQuery measures the Appendix D query: JIT over hot data vs
// Data Blocks with SMA/PSMA block skipping on naturally ordered data.
func BenchmarkFlightsQuery(b *testing.B) {
	hot, err := datasets.Flights(200_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	frozen, err := datasets.Flights(200_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := frozen.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		b.Fatal(err)
	}
	b.Run("jit-uncompressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.Run(datasets.FlightsQuery(hot), exec.Options{Mode: exec.ModeJIT}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("datablocks-psma", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.Run(datasets.FlightsQuery(frozen), exec.Options{Mode: exec.ModeVectorizedSARGPSMA}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEarlyProbe is the Appendix E ablation: a selective hash join
// probed by a lineitem scan, with and without early probing of the build
// side's tagged hash table inside the vectorized scan.
func BenchmarkEarlyProbe(b *testing.B) {
	_, cold, _ := benchDBs(b)
	li := cold.Lineitem.Schema()
	ord := cold.Orders.Schema()
	mkPlan := func(early bool) exec.Node {
		return &exec.AggNode{
			Child: &exec.JoinNode{
				Build: &exec.ScanNode{
					Rel:  cold.Orders,
					Cols: []int{ord.MustColumn("o_orderkey"), ord.MustColumn("o_orderdate")},
					Preds: []core.Predicate{{
						Col: ord.MustColumn("o_orderdate"), Op: types.Lt,
						Lo: types.DateValue(1992, 6, 1), // very selective build side
					}},
				},
				Probe: &exec.ScanNode{
					Rel:  cold.Lineitem,
					Cols: []int{li.MustColumn("l_orderkey"), li.MustColumn("l_extendedprice")},
				},
				BuildKeys:  []int{0},
				ProbeKeys:  []int{0},
				Kind:       exec.InnerJoin,
				EarlyProbe: early,
			},
			Aggs: []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggSum, Arg: exec.Col(1)}},
		}
	}
	for _, early := range []bool{false, true} {
		name := "off"
		if early {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(mkPlan(early), exec.Options{Mode: exec.ModeVectorizedSARG}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPointAccessMicro isolates the O(1) positional decompression of
// a single attribute (§3.4) against hot-chunk access.
func BenchmarkPointAccessMicro(b *testing.B) {
	hot, cold, _ := benchDBs(b)
	hotCh := hot.Lineitem.Chunk(0)
	coldCh := cold.Lineitem.Chunk(0)
	n := coldCh.Rows()
	r := xrand.New(2)
	b.Run("hot", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += hotCh.Hot().Ints(4)[r.Intn(n)]
		}
		_ = sink
	})
	b.Run("datablock", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += coldCh.Block().Int(4, r.Intn(n))
		}
		_ = sink
	})
}

// BenchmarkSerialize measures flattening a block to its pointer-free
// buffer and back (Figure 3).
func BenchmarkSerialize(b *testing.B) {
	_, cold, _ := benchDBs(b)
	blk := cold.Lineitem.Chunk(0).Block()
	kinds := make([]types.Kind, cold.Lineitem.Schema().NumColumns())
	for i, c := range cold.Lineitem.Schema().Columns {
		kinds[i] = c.Kind
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := blk.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	buf, _ := blk.MarshalBinary()
	b.Run("unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.UnmarshalBlock(buf, kinds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(len(buf)), "bytes/block")
}

// BenchmarkConsumePath isolates the consume side of vectorized scans: the
// same query, same scan mode, same frozen Data Blocks — once with the
// batch-at-a-time pipeline (vectorized aggregation/materialization) and
// once forced onto the tuple-at-a-time fallback chain. Q1 is the
// aggregation-heavy extreme (nearly all tuples qualify), Q6 the selective
// sum; the batch/tuple ratio is the PR 5 acceptance metric.
func BenchmarkConsumePath(b *testing.B) {
	_, cold, _ := benchDBs(b)
	for _, q := range []int{1, 6} {
		for _, mode := range []exec.ScanMode{exec.ModeVectorized, exec.ModeVectorizedSARG} {
			for _, tuple := range []bool{true, false} {
				path := "batch"
				if tuple {
					path = "tuple"
				}
				b.Run(fmt.Sprintf("Q%d/%s/%s", q, mode, path), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						opt := exec.Options{Mode: mode, TupleAtATime: tuple}
						if _, err := cold.Query(q, opt); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkStripedInsert measures multi-writer insert throughput across
// write-stripe counts (PR 9 tentpole): GOMAXPROCS writers hammer one
// in-memory table whose write path is sharded 1/2/4/8 ways. The
// acceptance metric is the stripes=1 → stripes=8 scaling factor.
func BenchmarkStripedInsert(b *testing.B) {
	cols := []datablocks.Column{
		{Name: "id", Kind: datablocks.Int64},
		{Name: "amount", Kind: datablocks.Float64},
		{Name: "status", Kind: datablocks.String},
	}
	for _, stripes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			db := datablocks.Open(datablocks.WithChunkRows(4096), datablocks.WithWriteStripes(stripes))
			defer db.Close()
			tbl, err := db.CreateTable("bench", cols, datablocks.WithPrimaryKey("id"))
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := next.Add(1)
					row := datablocks.Row{
						datablocks.Int(k),
						datablocks.Float(float64(k)),
						datablocks.Str("new"),
					}
					if _, err := tbl.Insert(row); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkNewOrderWrites measures new-order-style write throughput
// through the striped WAL group commit at 1, 4 and GOMAXPROCS writers:
// each transaction inserts one order row and three order lines, all
// acknowledged by the stripe logs' fsyncs (satellite: recorded by make
// bench-json).
func BenchmarkNewOrderWrites(b *testing.B) {
	orderCols := []datablocks.Column{
		{Name: "o_id", Kind: datablocks.Int64},
		{Name: "o_total", Kind: datablocks.Float64},
		{Name: "o_status", Kind: datablocks.String},
	}
	lineCols := []datablocks.Column{
		{Name: "ol_id", Kind: datablocks.Int64},
		{Name: "ol_amount", Kind: datablocks.Float64},
		{Name: "ol_item", Kind: datablocks.String},
	}
	counts := []int{1, 4}
	if all := runtime.GOMAXPROCS(0); all > 4 {
		counts = append(counts, all)
	}
	for _, writers := range counts {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			db, err := datablocks.OpenPath(b.TempDir(),
				datablocks.WithChunkRows(4096), datablocks.WithWriteStripes(8), datablocks.WithWAL())
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			orders, err := db.CreateTable("orders", orderCols, datablocks.WithPrimaryKey("o_id"))
			if err != nil {
				b.Fatal(err)
			}
			lines, err := db.CreateTable("order_lines", lineCols, datablocks.WithPrimaryKey("ol_id"))
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						tx := next.Add(1)
						if tx > int64(b.N) {
							return
						}
						if _, err := orders.Insert(datablocks.Row{
							datablocks.Int(tx),
							datablocks.Float(float64(tx)),
							datablocks.Str("new"),
						}); err != nil {
							b.Error(err)
							return
						}
						for l := int64(0); l < 3; l++ {
							if _, err := lines.Insert(datablocks.Row{
								datablocks.Int(tx*4 + l),
								datablocks.Float(float64(l)),
								datablocks.Str("item"),
							}); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
		})
	}
}
