package datablocks

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestUpdateLookupNoReadAnomaly is the regression test for the
// update/lookup read anomaly: Table.Update used to retire the old row
// version before repointing the primary-key index, so a concurrent Lookup
// could resolve the stale tuple identifier, find it delete-flagged, and
// miss a key that logically existed at all times. With epoch-versioned
// reads a lookup must always return either the pre- or the post-update
// version — never neither.
func TestUpdateLookupNoReadAnomaly(t *testing.T) {
	_, tbl := ordersTable(t)
	const key = int64(42)
	if _, err := tbl.Insert(Row{Int(key), Float(0), Str("v0")}); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var (
		misses  atomic.Int64
		lookups atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				row, ok := tbl.Lookup(key)
				lookups.Add(1)
				if !ok {
					misses.Add(1)
					continue
				}
				if row[0].Int() != key {
					t.Errorf("lookup %d returned id %d", key, row[0].Int())
					return
				}
			}
		}()
	}

	deadline := time.Now().Add(2 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		if err := tbl.Update(key, Row{Int(key), Float(float64(i)), Str("vn")}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if n := misses.Load(); n > 0 {
		t.Fatalf("%d of %d lookups missed key %d while it was being updated",
			n, lookups.Load(), key)
	}
}

// TestUpdateLookupStress is the -race stress companion: several writers
// update disjoint hot keys (both in place and with key changes) while
// readers hammer point lookups on them; any transient miss of a live key
// is a failure. Deletes of other keys and background freezing run
// alongside to exercise the epoch machinery across the hot/frozen
// boundary.
func TestUpdateLookupStress(t *testing.T) {
	db, tbl := ordersTable(t, WithChunkRows(256), WithAutoFreeze(1))
	const (
		writers = 4
		rounds  = 2000
		stripe  = int64(1) << 32
	)
	var (
		wg, rwg sync.WaitGroup
		stop    = make(chan struct{})
	)
	errCh := make(chan error, 2*writers)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// One pinned hot key per writer, present from the start so readers may
	// fail hard on any miss.
	for g := 0; g < writers; g++ {
		if _, err := tbl.Insert(Row{Int(int64(g) * stripe), Float(0), Str("pin")}); err != nil {
			t.Fatal(err)
		}
	}

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * stripe
			for i := 0; i < rounds; i++ {
				// Hammer the pinned key with in-place updates.
				if err := tbl.Update(base, Row{Int(base), Float(float64(i)), Str("upd")}); err != nil {
					report(fmt.Errorf("pinned update %d: %w", base, err))
					return
				}
				// Churn the writer's stripe: insert, key-changing update,
				// delete — the non-pinned traffic the epochs must tolerate.
				key := base + 1 + int64(i)
				if _, err := tbl.Insert(Row{Int(key), Float(0), Str("new")}); err != nil {
					report(fmt.Errorf("insert %d: %w", key, err))
					return
				}
				switch i % 3 {
				case 0:
					moved := base + stripe/2 + int64(i)
					if err := tbl.Update(key, Row{Int(moved), Float(1), Str("mv")}); err != nil {
						report(fmt.Errorf("move %d->%d: %w", key, moved, err))
						return
					}
				case 1:
					if ok, derr := tbl.Delete(key); derr != nil || !ok {
						report(fmt.Errorf("delete %d failed: %v %v", key, ok, derr))
						return
					}
				}
			}
		}(g)
	}

	for g := 0; g < writers; g++ {
		rwg.Add(1)
		go func(g int) {
			defer rwg.Done()
			base := int64(g) * stripe
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%64 == 63 {
					runtime.Gosched() // let writers through under -race
				}
				row, ok := tbl.Lookup(base)
				if !ok {
					report(fmt.Errorf("pinned key %d missed", base))
					return
				}
				if row[0].Int() != base {
					report(fmt.Errorf("pinned key %d resolved to id %d", base, row[0].Int()))
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < writers; g++ {
		if _, ok := tbl.Lookup(int64(g) * stripe); !ok {
			t.Fatalf("pinned key of writer %d lost after the run", g)
		}
	}
}
