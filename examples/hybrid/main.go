// Hybrid: OLTP and OLAP against the same database state (Figure 1).
// Writers stream point inserts/updates into hot chunks while an analytical
// query repeatedly scans the cold compressed Data Blocks. Chunks that fall
// behind the insert tail are frozen by the table's background compactor
// (WithAutoFreeze); compression runs outside the relation lock, so neither
// the writer nor the scanner stalls.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"datablocks"
	"datablocks/internal/exec"
)

func main() {
	db := datablocks.Open()
	orders, err := db.CreateTable("orders", []datablocks.Column{
		{Name: "id", Kind: datablocks.Int64},
		{Name: "customer", Kind: datablocks.Int64},
		{Name: "amount_cents", Kind: datablocks.Int64},
		{Name: "region", Kind: datablocks.String},
	}, datablocks.WithPrimaryKey("id"), datablocks.WithChunkRows(1<<13), datablocks.WithAutoFreeze(1))
	if err != nil {
		log.Fatal(err)
	}
	regions := []string{"EMEA", "APAC", "AMER"}
	var nextID atomic.Int64
	insert := func() {
		id := nextID.Add(1)
		_, err := orders.Insert(datablocks.Row{
			datablocks.Int(id),
			datablocks.Int(id % 5000),
			datablocks.Int((id * 37) % 100000),
			datablocks.Str(regions[id%3]),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 100_000; i++ {
		insert()
	}
	if err = orders.Freeze(); err != nil {
		log.Fatal(err)
	}
	st := orders.Stats()
	fmt.Printf("initial load: %d rows, %d frozen blocks, %d hot chunk(s)\n",
		orders.NumRows(), st.FrozenChunks, st.HotChunks)

	// Analytical plan: revenue by region for big orders, over hot+cold.
	scan, err := orders.ScanPlan([]string{"region", "amount_cents"}, []datablocks.Pred{
		{Col: "amount_cents", Op: datablocks.Ge, Lo: datablocks.Int(50_000)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	olap := &exec.AggNode{
		Child:   scan,
		GroupBy: []int{0},
		Aggs: []exec.AggSpec{
			{Func: exec.AggCount},
			{Func: exec.AggSum, Arg: datablocks.DivE(datablocks.Col(1), datablocks.CInt(100))},
		},
	}

	const duration = 2 * time.Second
	deadline := time.Now().Add(duration)
	var writes, scans atomic.Int64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // OLTP writer: inserts + updates + lookups
		defer wg.Done()
		i := int64(0)
		for time.Now().Before(deadline) {
			insert()
			writes.Add(1)
			if i%10 == 0 { // update a cold tuple: migrates to hot
				key := i%90_000 + 1
				if row, ok := orders.Lookup(key); ok {
					row[2] = datablocks.Int(row[2].Int() + 1)
					if err := orders.Update(key, row); err != nil {
						log.Fatal(err)
					}
					writes.Add(1)
				}
			}
			i++
		}
	}()
	wg.Add(1)
	go func() { // OLAP reader: repeated scans over hot + frozen chunks
		defer wg.Done()
		for time.Now().Before(deadline) {
			if _, err := datablocks.Query(olap, datablocks.QueryOptions{
				Mode: datablocks.ModeVectorizedSARGPSMA,
			}); err != nil {
				log.Fatal(err)
			}
			scans.Add(1)
		}
	}()
	wg.Wait()
	if err = db.Close(); err != nil { // stop the background compactor
		log.Fatal(err)
	}

	res, err := datablocks.Query(olap, datablocks.QueryOptions{Mode: datablocks.ModeVectorizedSARGPSMA})
	if err != nil {
		log.Fatal(err)
	}
	st = orders.Stats()
	fmt.Printf("after %v mixed workload: %d writes, %d analytic scans (auto-freeze in background)\n",
		duration, writes.Load(), scans.Load())
	fmt.Printf("storage: %d frozen blocks (%s), %d hot chunks (%s), %d deleted row versions\n",
		st.FrozenChunks, fmtBytes(st.FrozenBytes), st.HotChunks, fmtBytes(st.HotBytes), st.DeletedRows)
	fmt.Println("revenue by region (orders >= $500):")
	for i := 0; i < res.NumRows(); i++ {
		fmt.Printf("  %-5s %8d orders  $%.2f\n",
			res.Value(0, i).Str(), res.Value(1, i).Int(), res.Value(2, i).Float())
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
