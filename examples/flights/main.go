// Flights: the Appendix D scenario. The flights data is naturally ordered
// by date, so the year restriction lets SMAs skip most Data Blocks
// entirely, and the PSMA narrows the scan range inside the remaining
// blocks by destination airport — the paper reports >20x over a
// JIT-compiled scan of uncompressed data.
package main

import (
	"fmt"
	"log"
	"time"

	"datablocks/internal/core"
	"datablocks/internal/datasets"
	"datablocks/internal/exec"
	"datablocks/internal/types"
)

func main() {
	const rows = 500_000
	fmt.Printf("generating %d flights (Oct 1987 .. Apr 2008, date-ordered)...\n", rows)
	hot, err := datasets.Flights(rows, 0)
	if err != nil {
		log.Fatal(err)
	}
	frozen, err := datasets.Flights(rows, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := frozen.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		log.Fatal(err)
	}

	// How many blocks can be skipped outright for the 1998-2008 window?
	skipped, total := 0, 0
	for _, ch := range frozen.Chunks() {
		total++
		sc, err := core.NewScanner(ch.Block(), core.ScanSpec{
			Preds: []core.Predicate{
				{Col: frozen.Schema().MustColumn("year"), Op: types.Between,
					Lo: types.IntValue(1998), Hi: types.IntValue(2008)},
				{Col: frozen.Schema().MustColumn("dest"), Op: types.Eq, Lo: types.StringValue("SFO")},
			},
			UsePSMA: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if sc.SkippedBySMA() {
			skipped++
		}
	}
	fmt.Printf("SMA block skipping: %d of %d Data Blocks skipped\n", skipped, total)

	measure := func(name string, q exec.Node, mode exec.ScanMode) *exec.Result {
		start := time.Now()
		res, err := exec.Run(q, exec.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %10s\n", name, time.Since(start).Round(time.Microsecond))
		return res
	}
	fmt.Println("\nselect uniquecarrier, avg(arrdelay) from flights")
	fmt.Println("where year between 1998 and 2008 and dest = 'SFO'")
	fmt.Println("group by uniquecarrier order by avgdelay desc;")
	measure("JIT scan, uncompressed:", datasets.FlightsQuery(hot), exec.ModeJIT)
	res := measure("Data Blocks + SMA/PSMA:", datasets.FlightsQuery(frozen), exec.ModeVectorizedSARGPSMA)

	fmt.Println("\ncarrier  avg arrival delay (min)")
	for i := 0; i < res.NumRows() && i < 8; i++ {
		fmt.Printf("  %-6s %8.2f\n", res.Value(0, i).Str(), res.Value(1, i).Float())
	}
}
