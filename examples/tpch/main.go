// TPC-H: runs the supported query subset in every Table 2 scan
// configuration and prints the runtime matrix with its geometric mean —
// the shape of the paper's central result (+SARG/SMA/PSMA beats JIT on
// selective queries, vectorized scans cost a little on Q1).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"datablocks/internal/bench"
	"datablocks/internal/exec"
	"datablocks/internal/experiments"
	"datablocks/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	rounds := flag.Int("rounds", 3, "measurement rounds (median)")
	flag.Parse()

	fmt.Printf("generating TPC-H SF %g...\n", *sf)
	hot, err := tpch.Generate(*sf, 0)
	if err != nil {
		log.Fatal(err)
	}
	cold, err := tpch.Generate(*sf, 0)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := cold.FreezeAll(false, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("froze all relations into Data Blocks in %v\n", time.Since(start).Round(time.Millisecond))
	hotStats := hot.Lineitem.MemoryStats()
	coldStats := cold.Lineitem.MemoryStats()
	fmt.Printf("lineitem: %s uncompressed -> %s compressed (%.2fx)\n\n",
		bench.Bytes(hotStats.HotBytes), bench.Bytes(coldStats.FrozenBytes),
		float64(hotStats.HotBytes)/float64(coldStats.FrozenBytes))

	tbl := bench.NewTable("query", "JIT", "Vectorized", "+SARG", "Data Blocks", "+SARG/SMA", "+PSMA", "speedup")
	var geo [6][]float64
	for _, q := range tpch.SupportedQueries {
		row := []any{fmt.Sprintf("Q%d", q)}
		var jit, psma time.Duration
		for ci, cfg := range experiments.Table2Configs {
			db := hot
			if cfg.Frozen {
				db = cold
			}
			d := bench.MeasureBest(*rounds, func() {
				if _, err := db.Query(q, exec.Options{Mode: cfg.Mode}); err != nil {
					log.Fatal(err)
				}
			})
			geo[ci] = append(geo[ci], d.Seconds())
			row = append(row, d)
			if ci == 0 {
				jit = d
			}
			if ci == 5 {
				psma = d
			}
		}
		row = append(row, fmt.Sprintf("%.2fx", float64(jit)/float64(psma)))
		tbl.AddRow(row...)
	}
	gm := []any{"geo mean"}
	for ci := range geo {
		gm = append(gm, time.Duration(bench.GeoMean(geo[ci])*float64(time.Second)))
	}
	gm = append(gm, fmt.Sprintf("%.2fx", bench.GeoMean(geo[0])/bench.GeoMean(geo[5])))
	tbl.AddRow(gm...)
	tbl.Write(os.Stdout)

	// The counters behind the +PSMA column, per query: a profiled run of
	// the two Table 2 extremes shows where the speedup comes from (whole
	// chunks skipped by the SMAs on Q6, vectors pruned by the SARGs) and
	// what each operator contributed.
	for _, q := range []int{1, 6} {
		res, err := cold.Query(q, exec.Options{Mode: exec.ModeVectorizedSARGPSMA, Profile: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ%d on Data Blocks (+PSMA), profiled:\n%s", q, res.Profile)
	}
}
