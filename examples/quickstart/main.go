// Quickstart: create a durable table, load rows, freeze cold chunks into
// Data Blocks, run predicate scans on the compressed data, perform OLTP
// point accesses — the hybrid workflow of Figure 1 — then close the
// database and reopen it from disk to show the catalog/manifest recovery
// path.
//
// Usage: quickstart [data-dir] — without an argument a temp directory is
// used and removed afterwards.
package main

import (
	"fmt"
	"log"
	"os"

	"datablocks"
)

func main() {
	var dir string
	if len(os.Args) > 1 {
		dir = os.Args[1]
	} else {
		d, err := os.MkdirTemp("", "datablocks-quickstart-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	db, err := datablocks.OpenPath(dir)
	if err != nil {
		log.Fatal(err)
	}
	events, err := db.CreateTable("events", []datablocks.Column{
		{Name: "id", Kind: datablocks.Int64},
		{Name: "severity", Kind: datablocks.Int64},
		{Name: "service", Kind: datablocks.String},
		{Name: "latency_ms", Kind: datablocks.Float64},
	}, datablocks.WithPrimaryKey("id"), datablocks.WithChunkRows(1<<14))
	if err != nil {
		log.Fatal(err)
	}

	services := []string{"auth", "billing", "catalog", "checkout", "search"}
	for i := 0; i < 50_000; i++ {
		_, err = events.Insert(datablocks.Row{
			datablocks.Int(int64(i)),
			datablocks.Int(int64((i / 7) % 5)),
			datablocks.Str(services[i%len(services)]),
			datablocks.Float(float64(i%400) / 4),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	before := events.Stats()
	fmt.Printf("loaded %d rows, hot footprint %d bytes\n", events.NumRows(), before.HotBytes)

	// Freeze cold chunks: per-attribute optimal compression + SMAs/PSMAs.
	if err = events.Freeze(); err != nil {
		log.Fatal(err)
	}
	after := events.Stats()
	fmt.Printf("frozen %d chunks into Data Blocks: %d bytes (%.1fx compression), %d hot chunk(s) remain\n",
		after.FrozenChunks, after.FrozenBytes,
		float64(before.HotBytes)/float64(after.FrozenBytes), after.HotChunks)

	// Analytical scan with SARGable predicates evaluated on compressed data.
	res, err := events.Scan(
		[]string{"id", "service", "latency_ms"},
		[]datablocks.Pred{
			{Col: "severity", Op: datablocks.Ge, Lo: datablocks.Int(4)},
			{Col: "service", Op: datablocks.Eq, Lo: datablocks.Str("checkout")},
			{Col: "latency_ms", Op: datablocks.Gt, Lo: datablocks.Float(90)},
		},
		datablocks.QueryOptions{Mode: datablocks.ModeVectorizedSARGPSMA},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan matched %d slow severe checkout events; first rows:\n", res.NumRows())
	for i := 0; i < 3 && i < res.NumRows(); i++ {
		fmt.Printf("  %v\n", res.Row(i))
	}

	// OLTP against the same storage: point lookup, update, delete —
	// frozen tuples are read in place, updates migrate them to hot.
	row, ok := events.Lookup(31_337)
	fmt.Printf("point lookup id=31337: %v (found=%v)\n", row, ok)
	if err = events.Update(31_337, datablocks.Row{
		datablocks.Int(31_337), datablocks.Int(0),
		datablocks.Str("auth"), datablocks.Float(1.5),
	}); err != nil {
		log.Fatal(err)
	}
	row, _ = events.Lookup(31_337)
	fmt.Printf("after update: %v\n", row)
	if ok, derr := events.Delete(42); derr != nil || !ok {
		log.Fatalf("delete: existed=%v err=%v", ok, derr)
	}
	if _, ok := events.Lookup(42); !ok {
		fmt.Println("id=42 deleted (flag set in frozen block)")
	}

	// Durability: Close freezes the hot tail and writes the catalog and
	// per-table manifest, so the directory is a complete database image.
	liveRows := events.NumRows()
	if err = db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed; reopening %q as a new database instance\n", dir)
	db2, err := datablocks.OpenPath(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	recovered := db2.Table("events")
	if recovered == nil {
		log.Fatalf("events table not recovered; catalog lists %v", db2.Tables())
	}
	if got := recovered.NumRows(); got != liveRows {
		log.Fatalf("recovered %d rows, want %d", got, liveRows)
	}
	row, _ = recovered.Lookup(31_337)
	fmt.Printf("after reopen: %d rows, id=31337 -> %v\n", recovered.NumRows(), row)
	if _, ok := recovered.Lookup(42); !ok {
		fmt.Println("id=42 still deleted after reopen")
	}
}
