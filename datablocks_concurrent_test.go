package datablocks

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ordersTable(t *testing.T, opts ...TableOption) (*DB, *Table) {
	t.Helper()
	db := Open()
	tbl, err := db.CreateTable("orders",
		[]Column{
			{Name: "id", Kind: Int64},
			{Name: "amount", Kind: Float64},
			{Name: "status", Kind: String},
		},
		append([]TableOption{WithPrimaryKey("id")}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// TestUpdatePKCollisionRejected is the regression test for the PK-clobber
// bug: changing a row's primary key to one that already exists must fail
// and leave both rows and the index untouched.
func TestUpdatePKCollisionRejected(t *testing.T) {
	_, tbl := ordersTable(t)
	mustInsert := func(id int64, amount float64) {
		if _, err := tbl.Insert(Row{Int(id), Float(amount), Str("s")}); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert(1, 10)
	mustInsert(2, 20)

	if err := tbl.Update(1, Row{Int(2), Float(99), Str("clobber")}); err == nil {
		t.Fatal("PK-colliding update succeeded")
	}
	// Both tuples and index entries intact.
	for _, want := range []struct {
		id     int64
		amount float64
	}{{1, 10}, {2, 20}} {
		row, ok := tbl.Lookup(want.id)
		if !ok {
			t.Fatalf("key %d lost after rejected update", want.id)
		}
		if row[1].Float() != want.amount {
			t.Fatalf("key %d amount = %v, want %v", want.id, row[1], want.amount)
		}
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}

	// A key change to a *free* key still works and retires the old key.
	if err := tbl.Update(1, Row{Int(3), Float(30), Str("moved")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(1); ok {
		t.Fatal("old key still resolves")
	}
	if row, ok := tbl.Lookup(3); !ok || row[1].Float() != 30 {
		t.Fatal("new key wrong")
	}
	// Updating in place (same key) is unaffected.
	if err := tbl.Update(2, Row{Int(2), Float(21), Str("bump")}); err != nil {
		t.Fatal(err)
	}
	if row, _ := tbl.Lookup(2); row[1].Float() != 21 {
		t.Fatal("in-place update lost")
	}
}

// TestUpdateInvalidRowLeavesTableIntact: a row failing storage validation
// must not delete the tuple or disturb the index (regression for the
// delete-before-validate bug observed through the public API).
func TestUpdateInvalidRowLeavesTableIntact(t *testing.T) {
	_, tbl := ordersTable(t)
	if _, err := tbl.Insert(Row{Int(7), Float(1.5), Str("keep")}); err != nil {
		t.Fatal(err)
	}
	bad := []Row{
		{Int(7), Str("not a float"), Str("x")}, // kind mismatch
		{Int(7), Float(0)},                     // wrong arity
		{Null(Int64), Float(0), Str("x")},      // NULL primary key
	}
	for i, row := range bad {
		if err := tbl.Update(7, row); err == nil {
			t.Fatalf("bad row %d accepted", i)
		}
		got, ok := tbl.Lookup(7)
		if !ok {
			t.Fatalf("bad row %d: key 7 lost", i)
		}
		if got[1].Float() != 1.5 || got[2].Str() != "keep" {
			t.Fatalf("bad row %d: tuple mutated: %v", i, got)
		}
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

// TestAutoFreezeBackground: with WithAutoFreeze, sealed chunks become Data
// Blocks behind the insert tail without any explicit Freeze call, and
// every key stays readable throughout.
func TestAutoFreezeBackground(t *testing.T) {
	db, tbl := ordersTable(t, WithChunkRows(256), WithAutoFreeze(1))
	const n = 4096
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Float(float64(i)), Str("s")}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if tbl.Stats().FrozenChunks >= n/256-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor froze only %d chunks", tbl.Stats().FrozenChunks)
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row, ok := tbl.Lookup(int64(i))
		if !ok || row[0].Int() != int64(i) {
			t.Fatalf("key %d unreadable after auto-freeze", i)
		}
	}
	res, err := tbl.Scan([]string{"id"}, nil, QueryOptions{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != n {
		t.Fatalf("scan rows = %d, want %d", res.NumRows(), n)
	}
	// Close is idempotent and the table stays writable.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{Int(int64(n)), Float(0), Str("post-close")}); err != nil {
		t.Fatal(err)
	}
}

// TestAutoFreezeWakesOnUpdateRollover: an update-only workload appends new
// row versions and seals chunks just like inserts; the compactor must be
// woken by those rollovers too, or sealed hot chunks pile up unfrozen.
func TestAutoFreezeWakesOnUpdateRollover(t *testing.T) {
	db, tbl := ordersTable(t, WithChunkRows(128), WithAutoFreeze(1))
	const keys = 100 // less than one chunk: only updates can seal chunks
	for i := 0; i < keys; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Float(0), Str("v0")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		key := int64(i % keys)
		if err := tbl.Update(key, Row{Int(key), Float(float64(i)), Str("vn")}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for tbl.Stats().FrozenChunks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("update-only workload never triggered the compactor")
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, ok := tbl.Lookup(int64(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

// TestHybridStress is the acceptance stress test: OLTP writers, OLAP
// scanners and the background freezer all run concurrently on one table.
// Run it under `go test -race` to prove the lifecycle is race-free.
func TestHybridStress(t *testing.T) {
	db, tbl := ordersTable(t, WithChunkRows(512), WithAutoFreeze(1))
	const (
		writers   = 4
		scanners  = 2
		perWriter = 4000
		stripe    = int64(1) << 32
	)
	var (
		wg, scanWg sync.WaitGroup
		stop       = make(chan struct{})
		live       atomic.Int64
	)
	errCh := make(chan error, writers+scanners)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * stripe
			for i := 0; i < perWriter; i++ {
				key := base + int64(i)
				if _, err := tbl.Insert(Row{Int(key), Float(float64(i)), Str("new")}); err != nil {
					report(fmt.Errorf("insert %d: %w", key, err))
					return
				}
				live.Add(1)
				// Writers partition their stripe by residue so operations
				// never conflict with themselves: keys ≡ 0 (mod 10) are
				// update targets, keys ≡ 9 (mod 10) are delete victims.
				switch i % 5 {
				case 1: // in-place update of an older own key (≡ 0 mod 10)
					old := base + int64(i/2/10*10)
					if err := tbl.Update(old, Row{Int(old), Float(-1), Str("upd")}); err != nil {
						report(fmt.Errorf("update %d: %w", old, err))
						return
					}
				case 2: // PK-colliding update must keep failing cleanly
					if i > 0 {
						if err := tbl.Update(base+int64(i-1), Row{Int(key), Float(0), Str("x")}); err == nil {
							report(fmt.Errorf("collision update %d->%d succeeded", i-1, i))
							return
						}
					}
				case 3: // delete an old own key (≡ 9 mod 10, at most once)
					victim := base + int64(i/3/10*10+9)
					if ok, _ := tbl.Delete(victim); ok {
						live.Add(-1)
					}
				default: // point lookup of own fresh key
					if row, ok := tbl.Lookup(key); !ok || row[0].Int() != key {
						report(fmt.Errorf("lookup %d failed", key))
						return
					}
				}
			}
		}(g)
	}

	modes := []ScanMode{ModeVectorizedSARG, ModeVectorizedSARGPSMA, ModeJIT, ModeVectorized}
	for s := 0; s < scanners; s++ {
		scanWg.Add(1)
		go func(s int) {
			defer scanWg.Done()
			for i := s; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := tbl.Scan([]string{"id", "amount"},
					[]Pred{{Col: "id", Op: Ge, Lo: Int(0)}},
					QueryOptions{Mode: modes[i%len(modes)], Parallelism: 2})
				if err != nil {
					report(fmt.Errorf("scan: %w", err))
					return
				}
				// A snapshot scan can trail the live count but never sees
				// half-written rows: every id it returns is non-null.
				for r := 0; r < res.NumRows() && r < 5; r++ {
					if res.Row(r)[0].IsNull() {
						report(fmt.Errorf("scan saw NULL id"))
						return
					}
				}
			}
		}(s)
	}

	wg.Wait()
	close(stop)
	scanWg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if got := int64(tbl.NumRows()); got != live.Load() {
		t.Fatalf("NumRows = %d, writers left %d", got, live.Load())
	}
	res, err := tbl.Scan([]string{"id"}, nil, QueryOptions{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.NumRows()) != live.Load() {
		t.Fatalf("final scan rows = %d, want %d", res.NumRows(), live.Load())
	}
	stats := tbl.Stats()
	if stats.FrozenChunks == 0 {
		t.Fatal("background compactor froze nothing during the stress run")
	}
}
