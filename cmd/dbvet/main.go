// Command dbvet is the engine's static-analysis driver. It runs the
// contract checkers under internal/analysis — lockcheck, deadlockcheck,
// nilness, atomiccheck, pincheck, hotpath, hotpathperf, errcheckdb and
// shadow — in two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/dbvet ./...
//	go run ./cmd/dbvet -hotpath=false ./internal/storage
//
// As a go vet tool, speaking the -vettool compilation-unit protocol:
//
//	go build -o /tmp/dbvet ./cmd/dbvet
//	go vet -vettool=/tmp/dbvet ./...
//
// Both modes analyze test files: standalone loading expands each
// package into its test-augmented and external-test variants exactly as
// go vet does, so the modes cannot disagree on findings.
//
// Interprocedural facts (deadlockcheck's lock summaries) flow between
// packages through go vet's vetx files in -vettool mode and in memory,
// in dependency order, in standalone mode. Standalone runs additionally
// keep a per-package result cache (-cachedir, default bin/dbvet-cache)
// keyed by tool hash, source bytes, dependency export data and
// dependency facts, so a no-change run is incremental.
//
// Exit status is 1 when any diagnostic survives //dbvet:ignore
// suppression, 0 otherwise. Suppressions must carry a written reason;
// a reasonless ignore is itself a finding. -json reports the surviving
// findings as a JSON array on stdout instead (exit status unchanged),
// which CI uses to diff findings against the base branch.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"datablocks/internal/analysis"
	"datablocks/internal/analysis/atomiccheck"
	"datablocks/internal/analysis/deadlockcheck"
	"datablocks/internal/analysis/errcheckdb"
	"datablocks/internal/analysis/hotpath"
	"datablocks/internal/analysis/hotpathperf"
	"datablocks/internal/analysis/lockcheck"
	"datablocks/internal/analysis/nilness"
	"datablocks/internal/analysis/pincheck"
	"datablocks/internal/analysis/shadow"
)

var suite = []*analysis.Analyzer{
	lockcheck.Analyzer,
	deadlockcheck.Analyzer,
	nilness.Analyzer,
	atomiccheck.Analyzer,
	pincheck.Analyzer,
	hotpath.Analyzer,
	hotpathperf.Analyzer,
	errcheckdb.Analyzer,
	shadow.Analyzer,
}

// modulePrefix gates fact computation in VetxOnly mode: only this
// module's packages have lock summaries worth type-checking for;
// everything else (the standard library) gets instant empty facts.
const modulePrefix = "datablocks"

func main() {
	if err := analysis.Validate(suite); err != nil {
		fmt.Fprintln(os.Stderr, "dbvet:", err)
		os.Exit(1)
	}

	// The go command probes a vettool with -V=full and -flags before
	// handing it unit config files; handle those before flag parsing so
	// their output stays exactly what the protocol expects.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			analysis.PrintVersion()
		case "-flags", "--flags":
			analysis.PrintFlags(suite)
		}
	}

	fs := flag.NewFlagSet("dbvet", flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range suite {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	jsonOut := fs.Bool("json", false, "print surviving findings as JSON on stdout")
	cacheDir := fs.String("cachedir", "bin/dbvet-cache", "standalone result cache directory (empty disables)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dbvet [-<analyzer>=false ...] [-json] [package pattern ...]\n")
		fmt.Fprintf(fs.Output(), "       dbvet <unit>.cfg    (go vet -vettool mode)\n\nanalyzers:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	// go vet mode: a single positional argument naming a *.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		analysis.RunUnit(args[0], active, func(importPath string) bool {
			return strings.HasPrefix(importPath, modulePrefix)
		})
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbvet:", err)
		os.Exit(1)
	}

	cache := openCache(*cacheDir, active)

	// Facts flow forward in dependency order, keyed by both the listed
	// path ("p [p.test]") and the clean path, so an external test
	// package's dependency on "p" finds the facts the test-augmented
	// variant exported.
	factsByPath := map[string]analysis.PackageFacts{}
	var all []analysis.ResultDiagnostic
	suppressed := 0
	for _, pkg := range pkgs {
		var deps []analysis.PackageFacts
		seen := map[string]bool{}
		for _, dep := range pkg.Deps {
			if facts, ok := factsByPath[dep]; ok && !seen[dep] {
				seen[dep] = true
				deps = append(deps, facts)
			}
		}

		var entry *analysis.CacheEntry
		key := ""
		if cache != nil {
			if key, err = cache.Key(pkg, deps); err == nil {
				entry, _ = cache.Get(key)
			}
			err = nil
		}
		if entry == nil {
			diags, sup, facts, rerr := analysis.RunAnalyzers(pkg, active, deps)
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "dbvet:", rerr)
				os.Exit(1)
			}
			entry = &analysis.CacheEntry{Diags: diags, Suppressed: sup, Facts: facts}
			if cache != nil && key != "" {
				cache.Put(key, entry)
			}
		}

		if len(entry.Facts) > 0 {
			factsByPath[pkg.ListedPath] = entry.Facts
			factsByPath[pkg.PkgPath] = entry.Facts
		}
		suppressed += entry.Suppressed
		all = append(all, entry.Diags...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analysis.ResultDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "dbvet:", err)
			os.Exit(1)
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "dbvet: %d finding(s) suppressed by //dbvet:ignore\n", suppressed)
		}
		if len(all) > 0 {
			fmt.Fprintf(os.Stderr, "dbvet: %d finding(s)\n", len(all))
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// openCache builds the standalone result cache. The salt folds in the
// tool binary, the enabled analyzer set and the hot-path budget file,
// each of which changes findings without changing package sources.
func openCache(dir string, active []*analysis.Analyzer) *analysis.Cache {
	if dir == "" {
		return nil
	}
	self, err := analysis.SelfHash()
	if err != nil {
		// `go run` binaries in temp dirs can vanish mid-run; degrade to
		// uncached analysis rather than failing.
		return nil
	}
	h := sha256.New()
	fmt.Fprintf(h, "self=%s\n", self)
	for _, a := range active {
		fmt.Fprintf(h, "analyzer=%s\n", a.Name)
	}
	budget, _ := os.ReadFile("lint-budget.json")
	h.Write(budget)
	return analysis.OpenCache(dir, fmt.Sprintf("%x", h.Sum(nil)))
}
