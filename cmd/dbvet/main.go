// Command dbvet is the engine's static-analysis driver. It runs the
// contract checkers under internal/analysis — lockcheck, atomiccheck,
// pincheck, hotpath, errcheckdb and shadow — in two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/dbvet ./...
//	go run ./cmd/dbvet -hotpath=false ./internal/storage
//
// As a go vet tool, speaking the -vettool compilation-unit protocol:
//
//	go build -o /tmp/dbvet ./cmd/dbvet
//	go vet -vettool=/tmp/dbvet ./...
//
// Exit status is 1 when any diagnostic survives //dbvet:ignore
// suppression, 0 otherwise. Suppressions must carry a written reason;
// a reasonless ignore is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"datablocks/internal/analysis"
	"datablocks/internal/analysis/atomiccheck"
	"datablocks/internal/analysis/errcheckdb"
	"datablocks/internal/analysis/hotpath"
	"datablocks/internal/analysis/lockcheck"
	"datablocks/internal/analysis/pincheck"
	"datablocks/internal/analysis/shadow"
)

var suite = []*analysis.Analyzer{
	lockcheck.Analyzer,
	atomiccheck.Analyzer,
	pincheck.Analyzer,
	hotpath.Analyzer,
	errcheckdb.Analyzer,
	shadow.Analyzer,
}

func main() {
	if err := analysis.Validate(suite); err != nil {
		fmt.Fprintln(os.Stderr, "dbvet:", err)
		os.Exit(1)
	}

	// The go command probes a vettool with -V=full and -flags before
	// handing it unit config files; handle those before flag parsing so
	// their output stays exactly what the protocol expects.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			analysis.PrintVersion()
		case "-flags", "--flags":
			analysis.PrintFlags(suite)
		}
	}

	fs := flag.NewFlagSet("dbvet", flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range suite {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dbvet [-<analyzer>=false ...] [package pattern ...]\n")
		fmt.Fprintf(fs.Output(), "       dbvet <unit>.cfg    (go vet -vettool mode)\n\nanalyzers:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	var active []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	// go vet mode: a single positional argument naming a *.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		analysis.RunUnit(args[0], active)
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbvet:", err)
		os.Exit(1)
	}

	findings, suppressed := 0, 0
	for _, pkg := range pkgs {
		diags, sup, err := analysis.RunAnalyzers(pkg, active)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbvet:", err)
			os.Exit(1)
		}
		suppressed += sup
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
			findings++
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "dbvet: %d finding(s) suppressed by //dbvet:ignore\n", suppressed)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dbvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
