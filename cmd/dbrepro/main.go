// Command dbrepro regenerates the paper's tables and figures (§5 and the
// appendices) on laptop-scale data. Each subcommand prints the same rows or
// series the paper reports; EXPERIMENTS.md records a captured run next to
// the paper's numbers.
//
// Usage:
//
//	dbrepro [flags] <experiment>
//
// Experiments: table1 table2 table3 tpcc hybrid coldstore restart fig5
// fig8 fig9 fig10 fig11 fig12 fig13 flights profile metrics all
package main

import (
	"flag"
	"fmt"
	"os"

	"datablocks/internal/experiments"
)

func main() {
	// Victim mode for the restart kill test: when the parent re-executes
	// this binary with the crash directory in the environment, run the
	// child workload instead of an experiment (the process ends by SIGKILL).
	if dir := os.Getenv(experiments.CrashDirEnv); dir != "" {
		if err := experiments.CrashChild(dir); err != nil {
			fmt.Fprintf(os.Stderr, "dbrepro crash child: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var (
		sf       = flag.Float64("sf", 0.05, "TPC-H scale factor")
		rows     = flag.Int("rows", 400_000, "rows for IMDB/flights data sets")
		rounds   = flag.Int("rounds", 3, "measurement rounds (median reported)")
		lookups  = flag.Int("lookups", 20_000, "point lookups for table3")
		txCount  = flag.Int("tx", 20_000, "transactions for tpcc")
		parallel = flag.Int("parallel", 0, "query parallelism (<=0: all of GOMAXPROCS)")
		combos   = flag.Int("combos", 4096, "max storage-layout combinations for fig5")
		seconds  = flag.Float64("seconds", 2, "wall time for the hybrid/coldstore experiments")
		writers  = flag.Int("writers", 4, "OLTP writer goroutines for hybrid/coldstore")
		scanners = flag.Int("scanners", 2, "OLAP scanner goroutines for hybrid/coldstore")
		coldRows = flag.Int("coldrows", 120_000, "preloaded rows for coldstore")
		budget   = flag.Int64("budget", 128<<10, "frozen-block memory budget in bytes for coldstore")
		kill     = flag.Bool("kill", false, "restart only: SIGKILL a writer process at random crash points and assert zero lost acknowledged writes")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dbrepro [flags] <experiment>\n\nexperiments:\n")
		fmt.Fprintf(os.Stderr, "  table1   database sizes (Table 1)\n")
		fmt.Fprintf(os.Stderr, "  table2   TPC-H runtimes per scan type (Table 2/4)\n")
		fmt.Fprintf(os.Stderr, "  table3   point-access throughput (Table 3)\n")
		fmt.Fprintf(os.Stderr, "  tpcc     TPC-C throughput (§5.3)\n")
		fmt.Fprintf(os.Stderr, "  hybrid   concurrent OLTP writers + OLAP scans + background freezing (§1)\n")
		fmt.Fprintf(os.Stderr, "  coldstore larger-than-RAM: disk-backed eviction under a memory budget (§1)\n")
		fmt.Fprintf(os.Stderr, "  restart  durable reopen: close a dataset ≫ budget, reopen from disk, verify equivalence\n")
		fmt.Fprintf(os.Stderr, "           with -kill: SIGKILL a WAL-writing child at random crash points, reopen, assert zero lost acknowledged writes\n")
		fmt.Fprintf(os.Stderr, "  fig5     compile-time explosion (Figure 5)\n")
		fmt.Fprintf(os.Stderr, "  fig8     SIMD find-matches speedup (Figure 8)\n")
		fmt.Fprintf(os.Stderr, "  fig9     SIMD reduce-matches (Figure 9)\n")
		fmt.Fprintf(os.Stderr, "  fig10    compression ratio vs block size (Figure 10)\n")
		fmt.Fprintf(os.Stderr, "  fig11    Q6 on sorted blocks (Figure 11)\n")
		fmt.Fprintf(os.Stderr, "  fig12    bit-packing vs byte-aligned codes (Figure 12)\n")
		fmt.Fprintf(os.Stderr, "  fig13    vector-size sweep (Figure 13 / Appendix A)\n")
		fmt.Fprintf(os.Stderr, "  flights  Appendix D flights query\n")
		fmt.Fprintf(os.Stderr, "  profile  EXPLAIN-ANALYZE profiles of Q1/Q6 on Data Blocks + instrumentation cost\n")
		fmt.Fprintf(os.Stderr, "  metrics  DB.Metrics() JSON snapshot after a representative workload\n")
		fmt.Fprintf(os.Stderr, "  all      everything above\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	w := os.Stdout
	run := func(name string) error {
		switch name {
		case "table1":
			return experiments.Table1(w, *sf, *rows, *rows)
		case "table2":
			return experiments.Table2(w, *sf, *rounds, *parallel)
		case "table3":
			return experiments.Table3(w, *sf, *lookups)
		case "tpcc":
			return experiments.TPCC(w, *txCount)
		case "hybrid":
			return experiments.Hybrid(w, *seconds, *writers, *scanners)
		case "coldstore":
			return experiments.ColdStore(w, *coldRows, *seconds, *writers, *scanners, *budget)
		case "restart":
			if *kill {
				return experiments.CrashRestart(w, *rounds, nil)
			}
			return experiments.Restart(w, *coldRows, *budget)
		case "fig5":
			return experiments.Fig5(w, *combos)
		case "fig8":
			experiments.Fig8(w, 1<<14)
			return nil
		case "fig9":
			experiments.Fig9(w, 1<<14)
			return nil
		case "fig10":
			return experiments.Fig10(w, *sf, *rows, *rows)
		case "fig11":
			return experiments.Fig11(w, *sf, *rounds)
		case "fig12":
			return experiments.Fig12(w)
		case "fig13":
			return experiments.Fig13(w, *sf, *rounds)
		case "flights":
			return experiments.FlightsQuery(w, *rows, *rounds)
		case "profile":
			return experiments.ProfileQueries(w, *sf, *rounds, *parallel)
		case "metrics":
			return experiments.MetricsSnapshot(w, *coldRows)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, e := range []string{"table1", "table2", "table3", "tpcc", "hybrid", "coldstore", "restart", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "flights", "profile", "metrics"} {
			fmt.Fprintf(w, "==== %s ====\n", e)
			if err := run(e); err != nil {
				fmt.Fprintf(os.Stderr, "dbrepro %s: %v\n", e, err)
				os.Exit(1)
			}
			fmt.Fprintln(w)
		}
		return
	}
	if err := run(name); err != nil {
		fmt.Fprintf(os.Stderr, "dbrepro: %v\n", err)
		os.Exit(1)
	}
}
