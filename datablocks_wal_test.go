package datablocks

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"datablocks/internal/types"
	"datablocks/internal/wal"
	"datablocks/internal/walfs"
)

// walOpts are the WAL crash tests' table defaults. Deliberately no
// WithAutoFreeze: without a background compactor, dropping a *DB without
// Close is a faithful crash — nothing runs after the last acknowledged
// fsync.
func walOpts(stripes int) []TableOption {
	return []TableOption{WithChunkRows(256), WithWriteStripes(stripes), WithWAL()}
}

// eventsWALSchema mirrors mustCreateEvents for direct wal.ScanRecords use.
func eventsWALSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.Int64},
		types.Column{Name: "amount", Kind: types.Float64},
		types.Column{Name: "status", Kind: types.String},
	)
}

// copyTree clones a database directory so a crash image can be mutilated
// without disturbing the original.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWALReplayAfterCrash runs a mixed acknowledged workload — inserts,
// in-place updates, key-changing updates, deletes, striped four ways —
// then crashes (no Close, no manifest) and reopens: replay must rebuild
// the exact table.
func TestWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, walOpts(4)...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	loadEvents(t, tbl, 200)
	want := make(map[int64]float64, 200)
	for i := int64(0); i < 200; i++ {
		want[i] = float64(i) / 2
	}
	// In-place updates.
	for i := int64(0); i < 200; i += 5 {
		if uerr := tbl.Update(i, Row{Int(i), Float(1000 + float64(i)), Str("upd")}); uerr != nil {
			t.Fatal(uerr)
		}
		want[i] = 1000 + float64(i)
	}
	// Key-changing updates (logged as delete+insert in each key's stripe).
	for i := int64(3); i < 100; i += 7 {
		nk := i + 10_000
		if uerr := tbl.Update(i, Row{Int(nk), Float(want[i]), Str("moved")}); uerr != nil {
			t.Fatal(uerr)
		}
		want[nk] = want[i]
		delete(want, i)
	}
	// Deletes.
	for i := int64(1); i < 200; i += 9 {
		if _, live := want[i]; live {
			if ok, derr := tbl.Delete(i); derr != nil || !ok {
				t.Fatalf("delete %d refused: %v %v", i, ok, derr)
			}
			delete(want, i)
		}
	}

	// Crash: drop the handle. Acknowledged writes are fsynced in the
	// stripe logs; no manifest was ever written.
	db2, err := OpenPath(dir, walOpts(4)...)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	if tbl2 == nil {
		t.Fatal("events table not recovered")
	}
	if got := tbl2.NumRows(); got != len(want) {
		t.Fatalf("recovered %d rows, want %d", got, len(want))
	}
	for k, amt := range want {
		row, ok := tbl2.Lookup(k)
		if !ok {
			t.Fatalf("acknowledged key %d lost", k)
		}
		if row[1].Float() != amt {
			t.Fatalf("key %d: amount %v, want %v", k, row[1].Float(), amt)
		}
	}
	for _, k := range []int64{1, 10, 19} { // deleted keys
		if _, ok := tbl2.Lookup(k); ok {
			t.Fatalf("deleted key %d resurrected", k)
		}
	}
	if m := tbl2.Metrics().Wal; m.Replayed == 0 {
		t.Fatal("replay counter did not move")
	}
	// The recovered table keeps working: a post-recovery write cycle.
	if _, err := tbl2.Insert(Row{Int(77_777), Float(1), Str("post")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl2.Update(77_777, Row{Int(77_777), Float(2), Str("post")}); err != nil {
		t.Fatal(err)
	}
}

// TestWALCrashPointMatrix is the deterministic crash-point matrix: the
// stripe log of an acknowledged insert sequence is truncated at every
// record boundary AND mid-record, and every image must reopen to exactly
// the acknowledged prefix that survived whole — clean truncation, never
// a half-applied record, never an error.
func TestWALCrashPointMatrix(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, walOpts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	const n = 10
	loadEvents(t, tbl, n)
	// Crash (no Close); take the stripe log image.
	img, err := os.ReadFile(filepath.Join(dir, "events", "wal-0.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Find every record's end offset by sweeping the scanner over all
	// prefixes.
	schema := eventsWALSchema()
	boundaries := []int64{} // end offset of record i at boundaries[i]
	for cut := 0; cut <= len(img); cut++ {
		recs, _, err := wal.ScanRecords(img[:cut], schema)
		if err != nil {
			t.Fatalf("prefix %d: %v", cut, err)
		}
		if len(recs) > len(boundaries) {
			boundaries = append(boundaries, int64(cut))
		}
	}
	if len(boundaries) != n {
		t.Fatalf("found %d record boundaries, want %d", len(boundaries), n)
	}

	// Cut points: 0, mid-header, each boundary, and several mid-record
	// offsets inside each frame.
	type cutCase struct {
		at   int64
		want int // rows a reopen must recover
	}
	cases := []cutCase{{0, 0}, {5, 0}, {8, 0}}
	prev := int64(8)
	for i, b := range boundaries {
		cases = append(cases,
			cutCase{b, i + 1},          // exact record boundary
			cutCase{prev + 1, i},       // 1 byte into the frame
			cutCase{(prev + b) / 2, i}, // mid-record
			cutCase{b - 1, i},          // 1 byte short of complete
		)
		prev = b
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("cut=%d", c.at), func(t *testing.T) {
			crash := t.TempDir()
			copyTree(t, dir, crash)
			lp := filepath.Join(crash, "events", "wal-0.log")
			if err := os.Truncate(lp, c.at); err != nil {
				t.Fatal(err)
			}
			db2, err := OpenPath(crash, walOpts(1)...)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db2.Close()
			tbl2 := db2.Table("events")
			if got := tbl2.NumRows(); got != c.want {
				t.Fatalf("recovered %d rows, want %d", got, c.want)
			}
			for i := 0; i < c.want; i++ {
				row, ok := tbl2.Lookup(int64(i))
				if !ok || row[1].Float() != float64(i)/2 {
					t.Fatalf("surviving key %d wrong: %v %v", i, row, ok)
				}
			}
			if _, ok := tbl2.Lookup(int64(c.want)); ok {
				t.Fatalf("truncated record %d half-applied", c.want)
			}
			// The recovered image accepts new writes and they stick.
			if _, ierr := tbl2.Insert(Row{Int(5000), Float(5), Str("new")}); ierr != nil {
				t.Fatal(ierr)
			}
			if cerr := db2.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			db3, err := OpenPath(crash, walOpts(1)...)
			if err != nil {
				t.Fatal(err)
			}
			defer db3.Close()
			if _, ok := db3.Table("events").Lookup(5000); !ok {
				t.Fatal("post-recovery insert lost")
			}
		})
	}
}

// TestWALGroupCommitCrashProperty is the group-commit durability
// property: concurrent writers record which writes were acknowledged;
// the filesystem crashes at an arbitrary moment (everything unsynced is
// discarded); after reopen every acknowledged write must be present.
// Unacknowledged writes may or may not survive — for keys whose last
// attempt was not acknowledged, any attempted value (or the prior acked
// one) is legal, but nothing else.
func TestWALGroupCommitCrashProperty(t *testing.T) {
	const writers = 4
	for round := 0; round < 3; round++ {
		round := round
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			dir := t.TempDir()
			ffs := walfs.NewFaultFS()
			db, err := OpenPath(dir, append(walOpts(8), withWALFS(ffs))...)
			if err != nil {
				t.Fatal(err)
			}
			mustCreateEvents(t, db)
			tbl := db.Table("events")

			type keyState struct {
				acked    bool      // last attempt on this key acknowledged
				ackedAmt float64   // value of the last acknowledged attempt
				tried    []float64 // values attempted since the last ack
			}
			states := make([]map[int64]*keyState, writers)
			var acks atomic.Int64
			crashAfter := int64(50 + round*150) // vary the crash point per round
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				states[w] = make(map[int64]*keyState)
				go func(w int) {
					defer wg.Done()
					mine := states[w]
					rng := rand.New(rand.NewSource(int64(1000*round + w)))
					for i := 0; ; i++ {
						key := int64(w*1_000_000 + i)
						amt := float64(i)
						st := &keyState{tried: []float64{amt}}
						mine[key] = st
						if _, err := tbl.Insert(Row{Int(key), Float(amt), Str("new")}); err != nil {
							return // crashed (or poisoned) — stop writing
						}
						st.acked, st.ackedAmt, st.tried = true, amt, nil
						acks.Add(1)
						if rng.Intn(4) == 0 && i > 0 {
							// In-place update of one of my earlier keys.
							uk := int64(w*1_000_000 + rng.Intn(i))
							us := mine[uk]
							uv := amt + 0.5
							us.tried = append(us.tried, uv)
							if err := tbl.Update(uk, Row{Int(uk), Float(uv), Str("upd")}); err != nil {
								return
							}
							us.acked, us.ackedAmt, us.tried = true, uv, nil
							acks.Add(1)
						}
					}
				}(w)
			}
			// Crash once enough writes were acknowledged: every byte not
			// yet fsynced is gone, all later file ops fail.
			for acks.Load() < crashAfter {
			}
			if cerr := ffs.Crash(0); cerr != nil {
				t.Fatal(cerr)
			}
			wg.Wait()

			db2, err := OpenPath(dir, walOpts(8)...)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			tbl2 := db2.Table("events")
			checked := 0
			for w := 0; w < writers; w++ {
				for key, st := range states[w] {
					row, ok := tbl2.Lookup(key)
					if st.acked && len(st.tried) == 0 {
						// Fully acknowledged, nothing in flight: exact.
						if !ok {
							t.Fatalf("acknowledged key %d lost", key)
						}
						if got := row[1].Float(); got != st.ackedAmt {
							t.Fatalf("key %d: amount %v, want acknowledged %v", key, got, st.ackedAmt)
						}
						checked++
						continue
					}
					// An unacknowledged attempt was in flight at the
					// crash. Present ⇒ value must be one of the attempts
					// (or the prior ack); absent is legal only if the
					// insert itself was never acknowledged.
					if !ok {
						if st.acked {
							t.Fatalf("acknowledged key %d lost (unacked update may not erase it)", key)
						}
						continue
					}
					got := row[1].Float()
					legal := st.acked && got == st.ackedAmt
					for _, v := range st.tried {
						legal = legal || got == v
					}
					if !legal {
						t.Fatalf("key %d recovered with value %v, never written", key, got)
					}
				}
			}
			if checked == 0 {
				t.Fatal("property test checked no acknowledged keys")
			}
			if int64(checked) < crashAfter/2 {
				t.Fatalf("only %d acknowledged keys verified, crash threshold %d", checked, crashAfter)
			}
		})
	}
}

// TestWALStripedWritersRace hammers a striped WAL table from concurrent
// writers (inserts, updates, deletes) with a concurrent reader, closes
// cleanly, reopens, and checks the survivors. Exercised under -race by
// the race CI target.
func TestWALStripedWritersRace(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, walOpts(8)...)
	if err != nil {
		t.Fatal(err)
	}
	mustCreateEvents(t, db)
	tbl := db.Table("events")
	const writers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * per)
			for i := int64(0); i < per; i++ {
				key := base + i
				if _, err := tbl.Insert(Row{Int(key), Float(float64(key)), Str("new")}); err != nil {
					t.Errorf("insert %d: %v", key, err)
					return
				}
				switch i % 3 {
				case 1:
					if err := tbl.Update(key, Row{Int(key), Float(-float64(key)), Str("upd")}); err != nil {
						t.Errorf("update %d: %v", key, err)
						return
					}
				case 2:
					if ok, derr := tbl.Delete(key); derr != nil || !ok {
						t.Errorf("delete %d refused: %v %v", key, ok, derr)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent reader: lookups must never see a torn row.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := int64(0); k < writers*per; k += 97 {
				if row, ok := tbl.Lookup(k); ok && row[0].Int() != k {
					t.Errorf("lookup %d returned row keyed %d", k, row[0].Int())
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}
	wantRows := writers * per * 2 / 3
	if got := tbl.NumRows(); got != wantRows {
		t.Fatalf("%d live rows, want %d", got, wantRows)
	}
	m := tbl.Metrics().Wal
	if m.Stripes != 8 {
		t.Fatalf("Stripes = %d, want 8", m.Stripes)
	}
	if m.Records == 0 || m.Batches == 0 || m.Batches > m.Records {
		t.Fatalf("implausible WAL counters: %+v", m)
	}
	if cerr := db.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	db2, err := OpenPath(dir, walOpts(8)...)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	if got := tbl2.NumRows(); got != wantRows {
		t.Fatalf("reopen: %d live rows, want %d", got, wantRows)
	}
	for k := int64(0); k < writers*per; k++ {
		row, ok := tbl2.Lookup(k)
		switch k % 3 {
		case 0:
			if !ok || row[1].Float() != float64(k) {
				t.Fatalf("inserted key %d: %v %v", k, row, ok)
			}
		case 1:
			if !ok || row[1].Float() != -float64(k) {
				t.Fatalf("updated key %d: %v %v", k, row, ok)
			}
		case 2:
			if ok {
				t.Fatalf("deleted key %d resurrected", k)
			}
		}
	}
}

// TestWALCheckpointSkipsAndTruncates covers the WAL↔manifest contract:
// records at or below the manifest's applied LSN are skipped at replay
// (the blocks already hold them), and a checkpoint with no hot residue
// truncates the stripe logs.
func TestWALCheckpointSkipsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, walOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	loadEvents(t, tbl, 100)
	// FreezeAll: every chunk durable, manifest written, logs truncatable.
	if ferr := tbl.FreezeAll(); ferr != nil {
		t.Fatal(ferr)
	}
	for i := 0; i < 2; i++ {
		fi, serr := os.Stat(filepath.Join(dir, "events", fmt.Sprintf("wal-%d.log", i)))
		if serr != nil {
			t.Fatal(serr)
		}
		if fi.Size() > 8 {
			t.Fatalf("stripe %d log is %d bytes after full checkpoint, want header only", i, fi.Size())
		}
	}
	// More acknowledged writes after the checkpoint, then crash.
	for i := int64(100); i < 150; i++ {
		if _, ierr := tbl.Insert(Row{Int(i), Float(float64(i)), Str("hot")}); ierr != nil {
			t.Fatal(ierr)
		}
	}
	if uerr := tbl.Update(0, Row{Int(0), Float(-1), Str("upd")}); uerr != nil {
		t.Fatal(uerr)
	}

	db2, err := OpenPath(dir, walOpts(2)...)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	if got := tbl2.NumRows(); got != 150 {
		t.Fatalf("recovered %d rows, want 150", got)
	}
	if row, ok := tbl2.Lookup(0); !ok || row[1].Float() != -1 {
		t.Fatalf("post-checkpoint update lost: %v %v", row, ok)
	}
	if row, ok := tbl2.Lookup(149); !ok || row[1].Float() != 149 {
		t.Fatalf("post-checkpoint insert lost: %v %v", row, ok)
	}
	m := tbl2.Metrics().Wal
	if m.Replayed == 0 {
		t.Fatal("post-checkpoint records were not replayed")
	}
}

// TestWALEpochContinuity: the MVCC write epoch must be monotonic across a
// crash-restart, so version visibility ordering established before the
// crash cannot invert after it.
func TestWALEpochContinuity(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, walOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	loadEvents(t, tbl, 50)
	for r := 0; r < 5; r++ { // advance the epoch well past zero
		for i := int64(0); i < 50; i += 10 {
			if uerr := tbl.Update(i, Row{Int(i), Float(float64(100*r) + float64(i)), Str("upd")}); uerr != nil {
				t.Fatal(uerr)
			}
		}
	}
	if ferr := tbl.Freeze(); ferr != nil { // manifest carries the epoch
		t.Fatal(ferr)
	}
	preEpoch := tbl.Metrics().Epoch.WriteEpoch

	db2, err := OpenPath(dir, walOpts(2)...)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	if got := tbl2.Metrics().Epoch.WriteEpoch; got < preEpoch {
		t.Fatalf("write epoch regressed across restart: %d < %d", got, preEpoch)
	}
	// Last committed versions won; a fresh update supersedes them.
	if row, ok := tbl2.Lookup(10); !ok || row[1].Float() != 410 {
		t.Fatalf("key 10 recovered as %v %v, want amount 410", row, ok)
	}
	if err := tbl2.Update(10, Row{Int(10), Float(9999), Str("post")}); err != nil {
		t.Fatal(err)
	}
	if row, ok := tbl2.Lookup(10); !ok || row[1].Float() != 9999 {
		t.Fatalf("post-restart update not visible: %v %v", row, ok)
	}
}

// TestWALBulkLoadReplay: a bulk load is one group commit; its rows must
// survive a crash with no manifest.
func TestWALBulkLoadReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir, walOpts(4)...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	const n = 500
	ids := make([]int64, n)
	amts := make([]float64, n)
	strs := make([]string, n)
	for i := range ids {
		ids[i] = int64(i)
		amts[i] = float64(i) * 3
		strs[i] = "bulk"
	}
	cols := []ColumnData{
		{Kind: Int64, Ints: ids},
		{Kind: Float64, Floats: amts},
		{Kind: String, Strs: strs},
	}
	if lerr := tbl.BulkLoad(cols, n); lerr != nil {
		t.Fatal(lerr)
	}
	preBatches := tbl.Metrics().Wal.Batches

	db2, err := OpenPath(dir, walOpts(4)...)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	if got := tbl2.NumRows(); got != n {
		t.Fatalf("recovered %d rows, want %d", got, n)
	}
	for _, k := range []int64{0, 1, n / 2, n - 1} {
		row, ok := tbl2.Lookup(k)
		if !ok || row[1].Float() != float64(k)*3 {
			t.Fatalf("bulk row %d: %v %v", k, row, ok)
		}
	}
	if preBatches == 0 {
		t.Fatal("bulk load flushed no group-commit batch")
	}
}

// TestWALCrossStripeRenameCrashKeepsAcknowledgedRow pins the ordering of
// a key-changing cross-stripe update's two WAL records: the insert half
// (new key's stripe log) must be durable before the delete half (old
// key's stripe log) is even staged. The crash point exercised here —
// insert half fsynced, delete half appended but its fsync fails, then
// power loss discards everything unsynced — must leave BOTH versions
// alive. Under a delete-first ordering the mirrored crash point (delete
// durable, insert torn) destroyed the acknowledged pre-update row with no
// surviving version.
func TestWALCrossStripeRenameCrashKeepsAcknowledgedRow(t *testing.T) {
	dir := t.TempDir()
	ffs := walfs.NewFaultFS()
	db, err := OpenPath(dir, append(walOpts(4), withWALFS(ffs))...)
	if err != nil {
		t.Fatal(err)
	}
	tbl := mustCreateEvents(t, db)
	k1 := int64(0)
	k2 := int64(1)
	for tbl.stripeOf(k2) == tbl.stripeOf(k1) {
		k2++
	}
	if _, ierr := tbl.Insert(Row{Int(k1), Float(7), Str("new")}); ierr != nil {
		t.Fatal(ierr)
	}
	_, syncs := ffs.Ops()
	// The rename's insert half is the next fsync, its delete half the one
	// after. Fail the delete half's fsync, then crash dropping all
	// unsynced bytes (the appended delete record).
	ffs.FailSync(syncs + 2)
	if uerr := tbl.Update(k1, Row{Int(k2), Float(8), Str("moved")}); uerr == nil {
		t.Fatal("update with a failed delete-half fsync reported success")
	}
	if cerr := ffs.Crash(0); cerr != nil {
		t.Fatal(cerr)
	}

	db2, err := OpenPath(dir, walOpts(4)...)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	row, ok := tbl2.Lookup(k1)
	if !ok || row[1].Float() != 7 {
		t.Fatalf("acknowledged pre-update row %d lost or wrong: %v %v", k1, row, ok)
	}
	// The durable insert half legitimately survives alongside it: the
	// unacknowledged update half-applied, destroying nothing.
	row2, ok2 := tbl2.Lookup(k2)
	if !ok2 || row2[1].Float() != 8 {
		t.Fatalf("durable insert half %d lost: %v %v", k2, row2, ok2)
	}
	if got := tbl2.NumRows(); got != 2 {
		t.Fatalf("recovered %d rows, want 2", got)
	}
}

// TestWALOptionValidation: the WAL needs a durable table with a primary
// key; anything else must refuse at create, not fail at runtime.
func TestWALOptionValidation(t *testing.T) {
	db := Open() // in-memory
	defer db.Close()
	if _, err := db.CreateTable("t", []Column{{Name: "id", Kind: Int64}},
		WithPrimaryKey("id"), WithWAL()); err == nil {
		t.Fatal("WithWAL accepted on an in-memory table")
	}
	dir := t.TempDir()
	db2, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.CreateTable("t", []Column{{Name: "id", Kind: Int64}}, WithWAL()); err == nil {
		t.Fatal("WithWAL accepted without a primary key")
	}
}
